"""Batch-engine throughput: cold vs warm cache, serial vs pooled.

Measures functions/second for the standard-suite subset the engine can
race quickly, in four configurations:

* cold cache, serial;
* cold cache, pooled (2 workers);
* warm cache, serial (second run against the persisted store);
* warm cache, pooled.

The interesting ratios: warm/cold shows what the NPN-canonical store
amortises; pooled/serial shows the sharding win on cold races (warm runs
never hit the pool — every job is a cache rewrite).
"""

from __future__ import annotations

import time

from repro.engine import BatchEngine, EngineStats, SynthesisJob
from repro.eval.benchsuite import suite

#: Portfolio kept deterministic and modest so the benchmark stays quick.
STRATEGIES = ("dual", "dreducible", "pcircuit")


def _jobs():
    return [SynthesisJob.from_function(b.function, b.name, STRATEGIES)
            for b in suite(max_vars=5)]


def _timed_run(cache_path: str, processes: int) -> tuple[float, EngineStats]:
    jobs = _jobs()
    start = time.perf_counter()
    with BatchEngine(cache_path=cache_path, processes=processes) as engine:
        results = engine.run(jobs)
        elapsed = time.perf_counter() - start
        assert len(results) == len(jobs)
        stats = engine.stats
    return elapsed, stats


def test_engine_throughput(save_table, tmp_path):
    rows = []
    for label, processes in (("serial", 1), ("pooled-2", 2)):
        cache = str(tmp_path / f"bench-{label}.sqlite")
        cold_elapsed, cold_stats = _timed_run(cache, processes)
        warm_elapsed, warm_stats = _timed_run(cache, processes)
        rows.append((label, "cold", cold_elapsed, cold_stats))
        rows.append((label, "warm", warm_elapsed, warm_stats))
        # Correctness of the cache is asserted; wall-clock ratios are
        # reported, not asserted (timing noise must not fail the bench).
        assert warm_stats.hit_rate == 1.0

    lines = [
        "Batch-engine throughput (standard suite, n <= 5, "
        f"strategies={'/'.join(STRATEGIES)})",
        f"{'mode':10s} {'cache':6s} {'jobs':>5s} {'hits':>5s} "
        f"{'races':>6s} {'time[s]':>8s} {'fn/s':>7s}",
    ]
    for label, phase, elapsed, stats in rows:
        lines.append(
            f"{label:10s} {phase:6s} {stats.jobs:5d} {stats.cache_hits:5d} "
            f"{stats.races_run:6d} {elapsed:8.2f} "
            f"{stats.jobs / elapsed:7.2f}")
    serial_cold = rows[0][2]
    serial_warm = rows[1][2]
    lines.append(f"warm-cache speedup (serial): "
                 f"{serial_cold / serial_warm:.1f}x")
    save_table("engine_throughput", "\n".join(lines))


# -- raw-speed core pass: wide-n dedup and portfolio preemption ----------

def test_wide_n_semicanonical_hit_rate(save_table, save_core_speed,
                                       tmp_path):
    """n=7/8 NPN classmates must collapse onto one race via the wide keys.

    Exact canonicalization stops at n=6; beyond it the engine used to key
    every syntactic variant separately (zero cross-variant reuse).  The
    semi-canonical key restores the dedup: a batch of random wide tables
    plus one NPN-transformed mate each should race about half as often as
    it has jobs, and a warm rerun should hit outright.
    """
    import os
    import random

    from repro.boolean import NpnTransform, apply_transform
    from repro.boolean.truthtable import TruthTable

    smoke = os.environ.get("CORE_SPEED_SMOKE") == "1"
    regimes = ((7, 2),) if smoke else ((7, 12), (8, 6))
    rng = random.Random(43)
    report = []
    lines = []
    for n, bases in regimes:
        jobs = []
        for index in range(bases):
            table = TruthTable.from_bits(n, rng.getrandbits(1 << n))
            perm = list(range(n))
            rng.shuffle(perm)
            # input permutation + negation only: the store keeps one
            # lattice per (class, output-polarity) slot, so an output
            # flip is a different slot by design, not a dedup miss
            mate = apply_transform(table, NpnTransform(
                tuple(perm), rng.getrandbits(n), False))
            jobs.append(SynthesisJob.from_function(
                table, f"base-{n}-{index}", ("dual",)))
            jobs.append(SynthesisJob.from_function(
                mate, f"mate-{n}-{index}", ("dual",)))

        cache = str(tmp_path / f"bench-wide-{n}.sqlite")
        start = time.perf_counter()
        with BatchEngine(cache_path=cache, processes=1) as engine:
            engine.run(jobs)
            cold = engine.stats
            cold_elapsed = time.perf_counter() - start
            assert cold.races_run <= bases + 1  # mates collapsed in-run
            reuse = cold.deduped / cold.jobs
        with BatchEngine(cache_path=cache, processes=1) as engine:
            engine.run(jobs)
            assert engine.stats.hit_rate == 1.0  # persisted keys hit
        report.append({
            "n": n,
            "jobs": cold.jobs,
            "races_run": cold.races_run,
            "deduped": cold.deduped,
            "in_run_reuse_fraction": reuse,
            "cold_seconds": cold_elapsed,
        })
        lines.append(
            f"n={n}: {cold.jobs} jobs -> {cold.races_run} races "
            f"({cold.deduped} deduped in-run, cold {cold_elapsed:.2f}s)")

    save_core_speed("wide_n_dedup", {"smoke": smoke, "regimes": report})
    save_table("engine_wide_n", "\n".join(
        ["wide-n semi-canonical dedup (warm rerun hit rate 1.0):"]
        + lines))


def test_portfolio_preemption_latency(save_table, save_core_speed):
    """Raced portfolio vs serial on functions whose winner seals early.

    AND-of-6 hits the area lower bound with the first strategy; the
    raced portfolio kills the remaining strategies instead of running
    them to completion.  Verdicts must match the serial run exactly —
    the wall-clock cut is reported (and asserted only in full runs,
    where the margin dwarfs scheduler noise).
    """
    import os

    from repro.boolean.truthtable import TruthTable
    from repro.engine import run_portfolio, run_portfolio_raced

    smoke = os.environ.get("CORE_SPEED_SMOKE") == "1"
    repeats = 2 if smoke else 5
    table = TruthTable.from_minterms(6, [(1 << 6) - 1])

    def best_of(runner):
        verdict, elapsed = None, []
        for _ in range(repeats):
            start = time.perf_counter()
            verdict = runner(table)
            elapsed.append(time.perf_counter() - start)
        return verdict, min(elapsed)

    serial, serial_seconds = best_of(run_portfolio)
    raced, raced_seconds = best_of(run_portfolio_raced)
    assert raced.strategy == serial.strategy
    assert raced.lattice == serial.lattice
    preempted = sum(1 for o in raced.outcomes if o.status == "preempted")
    assert preempted >= 1
    speedup = serial_seconds / raced_seconds
    if not smoke:
        assert speedup >= 1.0  # preemption must not cost wall-clock

    save_core_speed("portfolio_preemption", {
        "smoke": smoke,
        "function": "and-of-6",
        "serial_seconds": serial_seconds,
        "raced_seconds": raced_seconds,
        "speedup": speedup,
        "strategies_preempted": preempted,
    })
    save_table("engine_preemption", "\n".join([
        "portfolio preemption (and-of-6, winner seals at the lower "
        "bound)",
        f"serial {serial_seconds:.3f}s   raced {raced_seconds:.3f}s   "
        f"speedup {speedup:.2f}x   preempted {preempted} strategies",
    ]))
