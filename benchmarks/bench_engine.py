"""Batch-engine throughput: cold vs warm cache, serial vs pooled.

Measures functions/second for the standard-suite subset the engine can
race quickly, in four configurations:

* cold cache, serial;
* cold cache, pooled (2 workers);
* warm cache, serial (second run against the persisted store);
* warm cache, pooled.

The interesting ratios: warm/cold shows what the NPN-canonical store
amortises; pooled/serial shows the sharding win on cold races (warm runs
never hit the pool — every job is a cache rewrite).
"""

from __future__ import annotations

import time

from repro.engine import BatchEngine, EngineStats, SynthesisJob
from repro.eval.benchsuite import suite

#: Portfolio kept deterministic and modest so the benchmark stays quick.
STRATEGIES = ("dual", "dreducible", "pcircuit")


def _jobs():
    return [SynthesisJob.from_function(b.function, b.name, STRATEGIES)
            for b in suite(max_vars=5)]


def _timed_run(cache_path: str, processes: int) -> tuple[float, EngineStats]:
    jobs = _jobs()
    start = time.perf_counter()
    with BatchEngine(cache_path=cache_path, processes=processes) as engine:
        results = engine.run(jobs)
        elapsed = time.perf_counter() - start
        assert len(results) == len(jobs)
        stats = engine.stats
    return elapsed, stats


def test_engine_throughput(save_table, tmp_path):
    rows = []
    for label, processes in (("serial", 1), ("pooled-2", 2)):
        cache = str(tmp_path / f"bench-{label}.sqlite")
        cold_elapsed, cold_stats = _timed_run(cache, processes)
        warm_elapsed, warm_stats = _timed_run(cache, processes)
        rows.append((label, "cold", cold_elapsed, cold_stats))
        rows.append((label, "warm", warm_elapsed, warm_stats))
        # Correctness of the cache is asserted; wall-clock ratios are
        # reported, not asserted (timing noise must not fail the bench).
        assert warm_stats.hit_rate == 1.0

    lines = [
        "Batch-engine throughput (standard suite, n <= 5, "
        f"strategies={'/'.join(STRATEGIES)})",
        f"{'mode':10s} {'cache':6s} {'jobs':>5s} {'hits':>5s} "
        f"{'races':>6s} {'time[s]':>8s} {'fn/s':>7s}",
    ]
    for label, phase, elapsed, stats in rows:
        lines.append(
            f"{label:10s} {phase:6s} {stats.jobs:5d} {stats.cache_hits:5d} "
            f"{stats.races_run:6d} {elapsed:8.2f} "
            f"{stats.jobs / elapsed:7.2f}")
    serial_cold = rows[0][2]
    serial_warm = rows[1][2]
    lines.append(f"warm-cache speedup (serial): "
                 f"{serial_cold / serial_warm:.1f}x")
    save_table("engine_throughput", "\n".join(lines))
