"""Batch-server acceptance bench: fidelity, coalescing, throughput.

Quantifies the tentpole claims of the serving front-end against a real
listener on an ephemeral localhost port:

* **fidelity** — served synthesis / faultsim / varsweep results are
  bit-identical to direct ``BatchEngine`` / campaign runs (hard assert);
* **coalescing** — N identical concurrent submissions cost exactly one
  computation (hard assert on the server's queue counters);
* **throughput** — jobs/s and trials/s at 1, 4 and 16 concurrent
  clients submitting distinct campaigns (reported, not asserted — timing
  noise must not fail the bench).

Everything lands in ``benchmarks/results/BENCH_server.json`` (the
committed artifact) plus the usual rendered table.  ``SERVER_SMOKE=1``
shrinks workloads and concurrency for CI runners; the fidelity and
coalescing asserts stay strict.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.engine import BatchEngine, SynthesisJob, lattice_to_text
from repro.eval.benchsuite import by_name
from repro.faultlab import CampaignSpec, run_campaign
from repro.server import ServerClient, serve_in_thread
from repro.synthesis import synthesize_lattice_dual
from repro.varsim import VariationCampaignSpec, run_variation_campaign

SMOKE = os.environ.get("SERVER_SMOKE") == "1"
CONCURRENCY = (1, 2, 4) if SMOKE else (1, 4, 16)
JOBS_PER_CLIENT = 2 if SMOKE else 4
TRIALS = 30 if SMOKE else 150
COALESCE_CLIENTS = 4 if SMOKE else 8
CROSSBAR_N = 8

ARTIFACT = pathlib.Path(__file__).parent / "results" / "BENCH_server.json"

#: Accumulated across tests, flushed by ``test_write_artifact`` (last).
_REPORT: dict = {
    "smoke": SMOKE,
    "config": {
        "concurrency_levels": list(CONCURRENCY),
        "jobs_per_client": JOBS_PER_CLIENT,
        "trials_per_job": TRIALS,
        "coalesce_clients": COALESCE_CLIENTS,
        "crossbar_n": CROSSBAR_N,
    },
    "served_equals_direct": {},
}


@pytest.fixture(scope="module")
def server():
    handle = serve_in_thread(processes=1, job_workers=4)
    yield handle
    handle.server.request_stop()
    handle.thread.join(timeout=60)


@pytest.fixture(scope="module")
def client(server):
    made = ServerClient(port=server.port, timeout=600.0)
    made.wait_healthy()
    return made


def _faultsim_payload(seed: int, trials: int = TRIALS) -> dict:
    return {"kind": "faultsim", "n_values": [CROSSBAR_N],
            "k_values": [CROSSBAR_N // 2, CROSSBAR_N],
            "densities": [0.05], "trials": trials,
            "batch_size": max(trials // 2, 1), "seed": seed}


def test_served_synthesis_bit_identical(client):
    benches = ["xnor2", "xor3", "maj3", "mux2"]
    served = client.run({"kind": "synthesis",
                         "jobs": [{"bench": name} for name in benches]})
    with BatchEngine() as engine:
        direct = engine.run([
            SynthesisJob.from_function(by_name(name).function, name)
            for name in benches
        ])
    assert [point["lattice"] for point in served["points"]] == \
           [lattice_to_text(result.lattice) for result in direct]
    assert [point["strategy"] for point in served["points"]] == \
           [result.strategy for result in direct]
    _REPORT["served_equals_direct"]["synthesis"] = True


def test_served_faultsim_bit_identical(client):
    payload = _faultsim_payload(seed=7)
    served = client.run(payload)
    direct = run_campaign(CampaignSpec(
        n_values=(CROSSBAR_N,), k_values=(CROSSBAR_N // 2, CROSSBAR_N),
        densities=(0.05,), trials=payload["trials"],
        batch_size=payload["batch_size"], seed=7))
    assert [point["k_histogram"] for point in served["points"]] == \
           [list(est.k_histogram) for est in direct.estimates]
    _REPORT["served_equals_direct"]["faultsim"] = True


def test_served_varsweep_bit_identical(client):
    trials = 20 if SMOKE else 60
    served = client.run({"kind": "varsweep", "bench": "xnor2",
                         "sigmas": [0.2, 0.5], "crossbar_rows": 8,
                         "crossbar_cols": 8, "trials": trials,
                         "batch_size": max(trials // 2, 1), "seed": 5})
    lattice = synthesize_lattice_dual(by_name("xnor2").function.on)
    direct = run_variation_campaign(VariationCampaignSpec(
        lattice=lattice, sigmas=(0.2, 0.5), crossbar_rows=8,
        crossbar_cols=8, trials=trials,
        batch_size=max(trials // 2, 1), seed=5))
    assert [point["aware_delays"] for point in served["points"]] == \
           [list(est.aware_delays) for est in direct.estimates]
    assert [point["oblivious_delays"] for point in served["points"]] == \
           [list(est.oblivious_delays) for est in direct.estimates]
    _REPORT["served_equals_direct"]["varsweep"] = True


def test_coalescing_one_computation(client):
    """N identical concurrent submissions -> exactly 1 computation."""
    payload = _faultsim_payload(seed=991)
    before = client.stats()["queue"]
    barrier = threading.Barrier(COALESCE_CLIENTS)

    def one_client() -> dict:
        mine = ServerClient(port=client.port, timeout=600.0)
        barrier.wait()
        submitted = mine.submit(payload)
        return {"coalesced": submitted["coalesced"],
                "result": mine.result(submitted["job_id"])}

    with ThreadPoolExecutor(max_workers=COALESCE_CLIENTS) as pool:
        outcomes = [future.result()
                    for future in [pool.submit(one_client)
                                   for _ in range(COALESCE_CLIENTS)]]

    after = client.stats()["queue"]
    computations = after["computations"] - before["computations"]
    coalesced = after["coalesced"] - before["coalesced"]
    assert computations == 1
    assert coalesced == COALESCE_CLIENTS - 1
    answers = {json.dumps(o["result"]["points"]) for o in outcomes}
    assert len(answers) == 1
    _REPORT["coalescing"] = {
        "submissions": COALESCE_CLIENTS,
        "computations": computations,
        "coalesced": coalesced,
        "identical_answers": True,
    }


def test_throughput_by_concurrency(client, save_table):
    """Wall-clock throughput of distinct jobs at growing client counts."""
    rows = []
    for level_index, clients in enumerate(CONCURRENCY):
        barrier = threading.Barrier(clients)

        def one_client(client_index: int, _level=level_index) -> int:
            mine = ServerClient(port=client.port, timeout=600.0)
            barrier.wait()
            done = 0
            for job_index in range(JOBS_PER_CLIENT):
                seed = 10_000 * (_level + 1) + 100 * client_index \
                    + job_index
                result = mine.run(_faultsim_payload(seed))
                assert result["state"] == "done"
                done += 1
            return done

        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=clients) as pool:
            finished = sum(pool.map(one_client, range(clients)))
        elapsed = time.perf_counter() - start
        assert finished == clients * JOBS_PER_CLIENT
        rows.append({
            "clients": clients,
            "jobs": finished,
            "elapsed_s": round(elapsed, 4),
            "jobs_per_s": round(finished / elapsed, 2),
            "trials_per_s": round(finished * TRIALS / elapsed, 1),
        })
    _REPORT["throughput"] = rows
    save_table("server_throughput", "\n".join(
        [f"batch server, faultsim jobs N={CROSSBAR_N} x {TRIALS} trials, "
         f"{JOBS_PER_CLIENT} jobs/client"] +
        [f"clients={row['clients']:>2d}  jobs={row['jobs']:>3d}  "
         f"{row['elapsed_s']:8.3f}s  {row['jobs_per_s']:8.2f} jobs/s  "
         f"{row['trials_per_s']:10.1f} trials/s" for row in rows]))


def test_write_artifact(client, results_dir):
    """Flush the accumulated report (runs last by definition order)."""
    _REPORT["server"] = {
        "queue": client.stats()["queue"],
        "engine": client.stats()["engine"],
    }
    assert _REPORT["served_equals_direct"] == {
        "synthesis": True, "faultsim": True, "varsweep": True}
    assert _REPORT["coalescing"]["computations"] == 1
    ARTIFACT.write_text(json.dumps(_REPORT, indent=2, sort_keys=True)
                        + "\n")
    print(f"[saved to {ARTIFACT}]")
