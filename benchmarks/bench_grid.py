"""Experiment-grid acceptance bench: fidelity, claim rate, fan-out.

Quantifies the grid subsystem's contract on a real store file:

* **fidelity** — a grid sweep's rows are bit-identical to a plain
  single-process ``run_campaign`` of the same points (hard assert), and
  the campaign then answers entirely from the shared store (hard
  assert on the cache-hit count);
* **claim rate** — raw claim/complete transactions per second on a WAL
  store file, the protocol's coordination ceiling (reported, plus a
  deliberately loose floor that only catches order-of-magnitude
  regressions);
* **fan-out** — two worker subprocesses sharing one store file drain
  the grid with every point computed exactly once (hard asserts on the
  per-row results and the attempt counters; wall-clock reported).

Results land in ``benchmarks/results/BENCH_grid.json``.  ``GRID_SMOKE=1``
shrinks workloads for CI runners; the fidelity asserts stay strict.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.engine import JsonStore
from repro.faultlab import CampaignSpec, run_campaign
from repro.faultlab import campaign as faultsim_campaign
from repro.grid import config_from_dict, grid_status, plan, run_workers, work_loop

SMOKE = os.environ.get("GRID_SMOKE") == "1"

DENSITIES = ([0.02, 0.05, 0.1, 0.2] if SMOKE else
             [round(0.02 + 0.02 * i, 2) for i in range(10)])
TRIALS = 400 if SMOKE else 8000
BATCH_SIZE = 100 if SMOKE else 1000
CROSSBAR_N = 8
#: Synthetic rows for the raw claim-rate measurement.
CLAIM_ROWS = 200 if SMOKE else 2000
#: Loose floor: catches an accidental O(rows) table scan per claim or a
#: sleep sneaking onto the claim path, not runner-to-runner noise.
CLAIM_RATE_FLOOR = 50.0

ARTIFACT = pathlib.Path(__file__).parent / "results" / "BENCH_grid.json"

_REPORT: dict = {
    "smoke": SMOKE,
    "config": {
        "densities": DENSITIES,
        "trials": TRIALS,
        "batch_size": BATCH_SIZE,
        "crossbar_n": CROSSBAR_N,
        "claim_rows": CLAIM_ROWS,
    },
}


def _grid_config(workers: int = 1):
    return config_from_dict({
        "name": "bench-grid",
        "family": "faultsim",
        "workers": workers,
        "grid": {"density": DENSITIES},
        "fixed": {"n": CROSSBAR_N, "trials": TRIALS,
                  "batch_size": BATCH_SIZE, "seed": 11},
    })


def _campaign_spec():
    return CampaignSpec(
        n_values=(CROSSBAR_N,), k_values=(0,),
        densities=tuple(DENSITIES), trials=TRIALS,
        batch_size=BATCH_SIZE, seed=11)


def test_grid_matches_direct_campaign(tmp_path):
    config = _grid_config()
    store_path = str(tmp_path / "fidelity.sqlite")

    start = time.perf_counter()
    with JsonStore(store_path) as store:
        grid_id, keys, _ = plan(config, store)
        tally = work_loop(config, grid_id, store, "bench")
        grid_seconds = time.perf_counter() - start
        assert tally["done"] == len(keys) and not tally["failed"]
        rows = {row.point_key: row for row in store.grid_rows_for(grid_id)}

        # The direct campaign on a *fresh* store is the ground truth.
        start = time.perf_counter()
        direct = run_campaign(_campaign_spec())
        direct_seconds = time.perf_counter() - start
        for estimate in direct.estimates:
            row = rows[estimate.point.key()]
            assert row.result == faultsim_campaign.payload_for(estimate)

        # Sharing the grid's store, the campaign recomputes nothing.
        shared = run_campaign(_campaign_spec(), store=store)
        assert shared.cache_hits == len(keys)
        assert shared.trials_sampled == 0

    _REPORT["fidelity"] = {
        "points": len(keys),
        "grid_seconds": round(grid_seconds, 4),
        "direct_seconds": round(direct_seconds, 4),
        "orchestration_overhead": round(
            grid_seconds / direct_seconds - 1.0, 4),
        "campaign_cache_hits_from_grid": shared.cache_hits,
    }


def test_claim_protocol_rate(tmp_path):
    store_path = str(tmp_path / "claims.sqlite")
    with JsonStore(store_path) as store:
        store.grid_add_points(
            "bench-claims",
            [(f"row/{index}", {"index": index}, None)
             for index in range(CLAIM_ROWS)])
        start = time.perf_counter()
        claimed = 0
        while True:
            row = store.grid_claim("bench-claims", "bench", 300.0)
            if row is None:
                break
            assert store.grid_complete(
                "bench-claims", row.point_key, "bench", {"ok": True})
            claimed += 1
        elapsed = time.perf_counter() - start
    assert claimed == CLAIM_ROWS
    rate = claimed / elapsed
    assert rate > CLAIM_RATE_FLOOR, (
        f"claim/complete rate collapsed: {rate:.0f}/s "
        f"(floor {CLAIM_RATE_FLOOR}/s)")
    _REPORT["claim_rate"] = {
        "rows": claimed,
        "seconds": round(elapsed, 4),
        "claims_per_second": round(rate, 1),
    }


def test_two_worker_fanout_bit_identical(tmp_path):
    config = _grid_config(workers=2)
    config_path = tmp_path / "grid.json"
    config_path.write_text(json.dumps({
        "name": "bench-grid", "family": "faultsim", "workers": 2,
        "grid": {"density": DENSITIES},
        "fixed": {"n": CROSSBAR_N, "trials": TRIALS,
                  "batch_size": BATCH_SIZE, "seed": 11},
    }))
    store_path = str(tmp_path / "fanout.sqlite")
    with JsonStore(store_path) as store:
        grid_id, keys, _ = plan(config, store)
    start = time.perf_counter()
    failures = run_workers(config, str(config_path), grid_id, store_path,
                           workers=2)
    elapsed = time.perf_counter() - start
    assert failures == 0
    with JsonStore(store_path) as store:
        status = grid_status(store, grid_id)
        rows = store.grid_rows_for(grid_id)
    assert status["finished"] and status["counts"] == {"done": len(keys)}
    # Exactly one execution per point: no retries means no double work.
    assert all(row.attempts == 1 for row in rows)
    direct = {estimate.point.key(): faultsim_campaign.payload_for(estimate)
              for estimate in run_campaign(_campaign_spec()).estimates}
    for row in rows:
        assert row.result == direct[row.point_key]
    _REPORT["fanout"] = {
        "workers": 2,
        "points": len(keys),
        "wall_seconds": round(elapsed, 4),
        "workers_used": sorted({row.worker for row in rows}),
    }


def test_write_artifact(save_table):
    ARTIFACT.parent.mkdir(exist_ok=True)
    ARTIFACT.write_text(json.dumps(_REPORT, indent=2, sort_keys=True) + "\n")
    lines = ["grid bench summary", "=================="]
    fidelity = _REPORT.get("fidelity", {})
    if fidelity:
        lines.append(
            f"fidelity: {fidelity['points']} points, grid "
            f"{fidelity['grid_seconds']}s vs direct "
            f"{fidelity['direct_seconds']}s "
            f"(overhead {fidelity['orchestration_overhead']:+.1%})")
    claim = _REPORT.get("claim_rate", {})
    if claim:
        lines.append(f"claim rate: {claim['claims_per_second']}/s over "
                     f"{claim['rows']} rows")
    fanout = _REPORT.get("fanout", {})
    if fanout:
        lines.append(f"fan-out: {fanout['workers']} workers drained "
                     f"{fanout['points']} points in "
                     f"{fanout['wall_seconds']}s "
                     f"({', '.join(fanout['workers_used'])})")
    save_table("BENCH_grid", "\n".join(lines))
