"""E-TAB-OPT: SAT-exact lattice synthesis ([9], Gange et al.).

Regenerates the optimal-vs-heuristic area table and benchmarks the CDCL
search on the paper's XNOR example (proved optimal at 2x2).
"""

from repro.eval.benchsuite import by_name
from repro.eval.experiments import get_experiment
from repro.synthesis import synthesize_lattice_optimal


def test_optimal_lattice_table(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: get_experiment("optimal").run(True), rounds=1, iterations=1)
    save_table("optimal_lattice", result.render())
    assert result.rows
    for row in result.rows:
        assert row["optimal_area"] <= row["folded_area"] <= row["formula_area"]
    # the worked example must be proved optimal at 4 sites
    xnor = next(row for row in result.rows if row["benchmark"] == "xnor2")
    assert xnor["optimal_area"] == 4 and xnor["proved"]


def test_optimal_search_speed_xor3(benchmark):
    table = by_name("xor3").function.on

    result = benchmark.pedantic(
        lambda: synthesize_lattice_optimal(table, conflict_budget=100_000),
        rounds=1, iterations=1)
    assert result.lattice.implements(table)
    assert result.area <= 9
