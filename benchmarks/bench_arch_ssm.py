"""E-ARCH: arithmetic / memory / SSM from crossbar blocks (Section V).

Regenerates the architecture-elements table (the paper's future-work
sub-objectives 3-4) and benchmarks SSM simulation throughput.
"""

from repro.arch import SynchronousStateMachine, counter_spec
from repro.eval.experiments import get_experiment


def test_arch_table(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: get_experiment("arch").run(True), rounds=1, iterations=1)
    save_table("arch_ssm", result.render())
    assert result.rows
    for row in result.rows:
        assert row["verified"], row["element"]


def test_ssm_simulation_throughput(benchmark):
    ssm = SynchronousStateMachine(counter_spec(3))
    stream = [1] * 200

    def run():
        ssm.reset()
        return ssm.run(stream)[-1]

    last = benchmark(run)
    assert last == 199 % 8
