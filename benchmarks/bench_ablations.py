"""Ablation benches for the design choices DESIGN.md calls out.

Not paper tables — these quantify the knobs inside our implementation:

* A1: the folding post-pass (how much of the Fig. 5 formula gap it closes);
* A2: P-circuit block flexibility (minimizing blocks with I as don't-care);
* A3: the hybrid BISM blind-budget;
* A4: minimization engine (exact / heuristic / ISOP) impact on lattice area;
* A5: the Altun-Riedel shared-literal tie-break.
"""

import random

from repro.boolean import minimize
from repro.eval.benchsuite import suite
from repro.eval.tables import format_table
from repro.reliability import as_program, hybrid_bism, random_defect_map
from repro.synthesis import (
    fold_lattice,
    lattice_from_covers,
    synthesize_lattice_dual,
    synthesize_pcircuit,
)

BENCHES = [b for b in suite(exclude=["large"], max_vars=5)]


def test_ablation_folding(benchmark, save_table):
    """A1: area before/after the folding post-pass."""

    def run():
        rows = []
        for bench in BENCHES:
            table = bench.function.on
            raw = synthesize_lattice_dual(table, verify=False)
            folded = fold_lattice(raw, table)
            rows.append({
                "benchmark": bench.name,
                "raw_area": raw.area,
                "folded_area": folded.area,
                "saving": raw.area - folded.area,
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table("ablation_folding", format_table(
        rows, title="[A1] folding post-pass"))
    assert all(row["folded_area"] <= row["raw_area"] for row in rows)
    assert sum(row["saving"] for row in rows) > 0


def test_ablation_pcircuit_flexibility(benchmark, save_table):
    """A2: P-circuit blocks with vs without the [7] don't-care flexibility."""
    targets = [b for b in BENCHES if b.n >= 3][:8]

    def run():
        rows = []
        for bench in targets:
            table = bench.function.on
            flexible = synthesize_pcircuit(table, 0, use_flexibility=True)
            rigid = synthesize_pcircuit(table, 0, use_flexibility=False)
            rows.append({
                "benchmark": bench.name,
                "flexible_area": flexible.area,
                "rigid_area": rigid.area,
                "flexibility_helps": flexible.area < rigid.area,
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table("ablation_pcircuit_flexibility", format_table(
        rows, title="[A2] P-circuit block flexibility"))
    # flexibility must never lose by much and should win somewhere
    assert all(row["flexible_area"] <= row["rigid_area"] * 1.5 for row in rows)
    assert any(row["flexibility_helps"] for row in rows)


def test_ablation_hybrid_budget(benchmark, save_table):
    """A3: hybrid BISM blind-budget sweep at a mid defect density."""
    program = as_program([[True, False, True], [False, True, False]])

    def run():
        rows = []
        for budget in (1, 3, 5, 10, 20):
            rng = random.Random(100)
            sessions = []
            for seed in range(40):
                defect_map = random_defect_map(
                    10, 10, 0.2, random.Random(seed))
                result = hybrid_bism(program, defect_map, rng,
                                     blind_budget=budget, max_retries=120)
                sessions.append(result.total_sessions(bisd_cost=9))
            rows.append({
                "blind_budget": budget,
                "avg_sessions": sum(sessions) / len(sessions),
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table("ablation_hybrid_budget", format_table(
        rows, title="[A3] hybrid BISM blind budget (density 0.2)"))
    assert len(rows) == 5


def test_ablation_minimizer_engine(benchmark, save_table):
    """A4: exact vs heuristic vs ISOP covers feeding the lattice flow."""
    targets = [b for b in BENCHES if 3 <= b.n <= 5][:8]

    def run():
        rows = []
        for bench in targets:
            table = bench.function.on
            areas = {}
            for method in ("exact", "heuristic", "isop"):
                cover = minimize(table, method=method)
                dual_cover = minimize(table.dual(), method=method)
                lattice = lattice_from_covers(cover, dual_cover)
                areas[method] = lattice.area
            rows.append({"benchmark": bench.name, **areas})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table("ablation_minimizer", format_table(
        rows, title="[A4] minimization engine vs lattice area"))
    for row in rows:
        assert row["exact"] <= row["heuristic"] + 1e-9
        assert row["exact"] <= row["isop"] + 1e-9


def test_ablation_tie_break(benchmark, save_table):
    """A5: shared-literal tie-break vs post-folding area."""
    targets = [b for b in BENCHES if b.n >= 3][:10]

    def run():
        rows = []
        for bench in targets:
            table = bench.function.on
            cover = minimize(table)
            dual_cover = minimize(table.dual())
            if not cover.num_products or not dual_cover.num_products:
                continue
            entry = {"benchmark": bench.name}
            for strategy in ("first", "last", "frequent"):
                lattice = lattice_from_covers(cover, dual_cover, strategy)
                assert lattice.implements(table)
                entry[strategy] = fold_lattice(lattice, table).area
            rows.append(entry)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table("ablation_tie_break", format_table(
        rows, title="[A5] Altun-Riedel site tie-break (post-folding area)"))
    assert rows
