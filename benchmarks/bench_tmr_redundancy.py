"""E-TMR: transient/permanent fault tolerance via redundancy ([15]).

Extension experiment: TMR (three lattice replicas + a lattice majority
voter) against transient site upsets, and spare-line repair for permanent
defects.  Checks the classic TMR crossover shape.
"""

import random

from repro.eval.benchsuite import by_name
from repro.eval.experiments import get_experiment
from repro.reliability import majority_voter_lattice, tmr_reliability
from repro.synthesis import fold_lattice, synthesize_lattice_dual


def test_tmr_table(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: get_experiment("tmr").run(True), rounds=1, iterations=1)
    save_table("tmr_redundancy", result.render())
    numeric = [row for row in result.rows
               if isinstance(row["upset_rate"], float)]
    by_rate = {row["upset_rate"]: row for row in numeric}
    # fault-free: both perfect
    assert by_rate[0.0]["simplex_correct"] == 1.0
    assert by_rate[0.0]["tmr_correct"] == 1.0
    # low upset rates: TMR must win
    assert by_rate[0.01]["tmr_correct"] >= by_rate[0.01]["simplex_correct"]
    # the advantage must shrink (or invert) as the rate grows
    gain_low = by_rate[0.01]["tmr_correct"] - by_rate[0.01]["simplex_correct"]
    gain_high = by_rate[0.2]["tmr_correct"] - by_rate[0.2]["simplex_correct"]
    assert gain_high < gain_low + 0.05


def test_tmr_evaluation_speed(benchmark):
    f = by_name("xnor2").function
    replica = fold_lattice(synthesize_lattice_dual(f.on), f.on)
    rng = random.Random(0)

    def run():
        return tmr_reliability(replica, f.on, [0.05], 200, rng)[0]

    point = benchmark.pedantic(run, rounds=1, iterations=1)
    assert 0.0 <= point.tmr_correct <= 1.0


def test_voter_lattice_area(benchmark):
    voter = benchmark(majority_voter_lattice)
    assert voter.area == 6  # maj3 folds to 2x3
