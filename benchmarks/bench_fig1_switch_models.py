"""E-FIG1: two- vs four-terminal switch semantics (paper Fig. 1).

Regenerates the model-comparison table and benchmarks the percolation
evaluator — the operational core of the four-terminal model.
"""

import random

from repro.crossbar import top_bottom_connected
from repro.eval.experiments import get_experiment


def test_fig1_switch_model_table(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: get_experiment("fig1").run(True), rounds=3, iterations=1)
    save_table("fig1_switch_models", result.render())
    assert len(result.rows) == 3
    assert all(row["implements_xnor2"] for row in result.rows)


def test_fig1_percolation_throughput(benchmark):
    rng = random.Random(1)
    grids = [
        [[rng.random() < 0.6 for _ in range(16)] for _ in range(16)]
        for _ in range(100)
    ]

    def run():
        return sum(top_bottom_connected(grid) for grid in grids)

    connected = benchmark(run)
    assert 0 <= connected <= 100
