"""Observability overhead: the telemetry layer must be nearly free.

Times the warm batch-engine path (every job answered from the
NPN-canonical cache — the hot serving regime where per-job work is a
probe plus a witness rewrite) with the obs subsystem **enabled** vs
**disabled** (:func:`repro.obs.set_enabled`).  The enabled samples pay
for every span, counter and histogram the instrumented stack produces;
the disabled samples pay only the per-operation flag checks.

Machine drift on shared runners swings raw wall-clock far more than the
effect under test, so the bench interleaves at the finest grain: single
batch runs alternate enabled/disabled, both modes sample the same noise
distribution, and the reported figure compares the **medians** of the
two per-run populations — the median throws away the one-sided slow
bursts that sink coarser group-timing designs.

The acceptance bar: enabled-mode overhead stays **under 3%** on the full
bench (``OBS_SMOKE=1`` shrinks the sample counts and relaxes the bound
for noisy CI runners but keeps the measurement shape identical).
Results land in ``benchmarks/results/BENCH_obs.json``.
"""

from __future__ import annotations

import json
import os
import pathlib
import statistics
import time

from repro.engine import BatchEngine, SynthesisJob
from repro.eval.benchsuite import suite
from repro.obs import clear_spans, set_enabled

SMOKE = os.environ.get("OBS_SMOKE") == "1"
#: Timed batch runs per mode (interleaved run-by-run) after WARMUP
#: untimed runs.
SAMPLES = 20 if SMOKE else 200
WARMUP = 3 if SMOKE else 10
#: Timing noise dominates tiny CI runners; the committed artifact comes
#: from the full bench where the 3% bound is meaningful.
OVERHEAD_LIMIT = 0.25 if SMOKE else 0.03

#: Portfolio kept deterministic and modest so the benchmark stays quick.
STRATEGIES = ("dual", "dreducible", "pcircuit")

ARTIFACT = pathlib.Path(__file__).parent / "results" / "BENCH_obs.json"


def _jobs():
    return [SynthesisJob.from_function(b.function, b.name, STRATEGIES)
            for b in suite(max_vars=5)]


def test_obs_overhead_on_warm_engine_path(save_table, tmp_path):
    jobs = _jobs()
    cache = str(tmp_path / "bench-obs.sqlite")
    samples: dict[bool, list[float]] = {True: [], False: []}
    with BatchEngine(cache_path=cache, processes=1) as engine:
        try:
            for _ in range(1 + WARMUP):  # first run warms the cache
                engine.run(jobs)
            for index in range(2 * SAMPLES):
                enabled = index % 2 == 0
                set_enabled(enabled)
                start = time.perf_counter()
                results = engine.run(jobs)
                samples[enabled].append(time.perf_counter() - start)
                if index % 50 == 0:
                    clear_spans()  # keep the ring from growing unbounded
            assert len(results) == len(jobs)
        finally:
            set_enabled(True)
            clear_spans()
        assert engine.stats.hit_rate > 0.9

    enabled_median = statistics.median(samples[True])
    disabled_median = statistics.median(samples[False])
    overhead = enabled_median / disabled_median - 1.0
    report = {
        "smoke": SMOKE,
        "config": {
            "jobs_per_batch": len(jobs),
            "samples_per_mode": SAMPLES,
            "strategies": list(STRATEGIES),
        },
        "enabled_median_seconds": enabled_median,
        "disabled_median_seconds": disabled_median,
        "enabled_min_seconds": min(samples[True]),
        "disabled_min_seconds": min(samples[False]),
        "overhead_fraction": overhead,
        "overhead_limit": OVERHEAD_LIMIT,
    }
    ARTIFACT.parent.mkdir(exist_ok=True)
    ARTIFACT.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    save_table("obs_overhead", "\n".join([
        "Observability overhead (warm engine path, "
        f"{len(jobs)} jobs/batch, {SAMPLES} interleaved runs/mode)",
        f"{'mode':10s} {'median[s]':>10s} {'fn/s':>9s}",
        f"{'enabled':10s} {enabled_median:10.5f} "
        f"{len(jobs) / enabled_median:9.1f}",
        f"{'disabled':10s} {disabled_median:10.5f} "
        f"{len(jobs) / disabled_median:9.1f}",
        f"median-vs-median overhead: {100.0 * overhead:+.2f}%  (limit "
        f"{100.0 * OVERHEAD_LIMIT:.0f}%{', smoke' if SMOKE else ''})",
    ]))
    assert overhead < OVERHEAD_LIMIT, (
        f"telemetry overhead {overhead:.1%} exceeds {OVERHEAD_LIMIT:.0%}")
