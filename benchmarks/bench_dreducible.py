"""E-TAB-DR: synthesis of D-reducible functions (Section III-B.2, [4],[6]).

Regenerates the chi_A / f_A decomposition table and benchmarks hull
detection plus decomposition on the D-reducible sub-suite.
"""

from repro.boolean import is_d_reducible
from repro.eval.benchsuite import suite
from repro.eval.experiments import get_experiment


def test_dreducible_table(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: get_experiment("dreducible").run(True), rounds=1, iterations=1)
    save_table("dreducible", result.render())
    assert result.rows
    for row in result.rows:
        # every suite entry really was reducible and both factors are real
        assert row["dims_dropped"] >= 1
        assert row["chi_area"] >= 1 and row["fA_area"] >= 1
        assert row["composed_area"] >= 1
    # the paper: "this expectation has been confirmed by a set of
    # experimental results" — decomposition must win somewhere (it does, on
    # the small-support-constraint functions; full-width parity constraints
    # price chi_A too high, which the table shows honestly)
    assert any(row["improves"] for row in result.rows)


def test_dreducible_detection_speed(benchmark):
    tables = [b.function.on for b in suite(tags=["d-reducible"])]

    def run():
        return [is_d_reducible(t) for t in tables]

    flags = benchmark(run)
    assert all(flags)
