"""Varsim throughput: scalar variation sweep vs the batched campaign.

Quantifies the tentpole claims of the variation-campaign engine:

* the batched pipeline (one lognormal ensemble draw + argpartition line
  selection + Bellman-Ford delay relaxation) must beat the scalar
  ``variation_sweep`` loop (per-trial map draw + pure-Python Dijkstra per
  minterm) by >= 10x at 16x16 x 500 trials, like-for-like;
* pooled campaign runs must return bit-identical delay vectors to serial
  ones (the speedup is reported, not asserted — timing noise must not
  fail the bench);
* a second run against the persisted store is pure cache reads.

``VARSIM_SMOKE=1`` shrinks the workloads and relaxes the speedup floor so
the kernels can run as a CI smoke step on noisy shared runners (the
bit-exactness assertions stay strict).
"""

from __future__ import annotations

import os
import random
import time

from repro.eval.benchsuite import by_name
from repro.reliability.variation import variation_sweep
from repro.synthesis import synthesize_lattice_dual
from repro.varsim import VariationCampaignSpec, run_variation_campaign

SMOKE = os.environ.get("VARSIM_SMOKE") == "1"
#: Full-run floor is the acceptance criterion; the smoke floor only guards
#: against the batched path regressing to scalar speed.
MIN_SPEEDUP = 2.0 if SMOKE else 10.0
CROSSBAR = 8 if SMOKE else 16
TRIALS = 80 if SMOKE else 500
SIGMA = 0.5


def _lattice():
    return synthesize_lattice_dual(by_name("xnor2").function.on)


def _campaign_spec(trials: int, sigmas=(SIGMA,),
                   batch_size: int | None = None) -> VariationCampaignSpec:
    # Like-for-like single-batch layout by default; the serial-vs-pooled
    # bench passes a smaller batch_size to exercise the sharded path.
    return VariationCampaignSpec(
        lattice=_lattice(), sigmas=sigmas, crossbar_rows=CROSSBAR,
        crossbar_cols=CROSSBAR, trials=trials,
        batch_size=batch_size or trials, seed=1)


def test_varsim_scalar_vs_batched(benchmark, save_table):
    """The acceptance ratio: batched campaign >= 10x the scalar sweep at
    16x16 x 500 trials, same estimator on both sides."""
    lattice = _lattice()
    # Warm both paths once so neither pays first-call setup in the timing.
    variation_sweep(lattice, [SIGMA], CROSSBAR, CROSSBAR, 8, random.Random(1))
    run_variation_campaign(_campaign_spec(8))

    start = time.perf_counter()
    scalar_points = variation_sweep(lattice, [SIGMA], CROSSBAR, CROSSBAR,
                                    TRIALS, random.Random(1))
    scalar_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    batched = benchmark.pedantic(
        lambda: run_variation_campaign(_campaign_spec(TRIALS)),
        rounds=1, iterations=1)
    batched_elapsed = time.perf_counter() - start

    speedup = scalar_elapsed / batched_elapsed
    scalar_point = scalar_points[0]
    estimate = batched.estimates[0]
    save_table("varsim_scalar_vs_batched", "\n".join([
        f"variation sweep, crossbar {CROSSBAR}x{CROSSBAR}, sigma={SIGMA}, "
        f"trials={TRIALS}",
        f"scalar   {scalar_elapsed:8.3f}s  "
        f"({TRIALS / scalar_elapsed:8.0f} trials/s)  "
        f"aware_mean={scalar_point.aware_mean:.3f}  "
        f"oblivious_mean={scalar_point.oblivious_mean:.3f}",
        f"batched  {batched_elapsed:8.3f}s  "
        f"({TRIALS / batched_elapsed:8.0f} trials/s)  "
        f"aware_mean={estimate.aware_mean:.3f}  "
        f"oblivious_mean={estimate.oblivious_mean:.3f}",
        f"speedup  {speedup:8.1f}x",
    ]))
    # Both estimators sample the same distributions (different streams):
    # the qualitative Section IV ordering must hold on each side, and the
    # Monte-Carlo means must agree within sampling noise.
    assert estimate.aware_mean <= estimate.oblivious_mean * 1.02
    assert scalar_point.aware_mean <= scalar_point.oblivious_mean * 1.02
    tolerance = 0.35 if SMOKE else 0.2
    assert abs(estimate.aware_mean - scalar_point.aware_mean) \
        <= tolerance * scalar_point.aware_mean
    assert abs(estimate.oblivious_mean - scalar_point.oblivious_mean) \
        <= tolerance * scalar_point.oblivious_mean
    assert speedup >= MIN_SPEEDUP


def test_varsim_serial_vs_pooled(benchmark, save_table):
    """Campaign-runner throughput across pool sizes, bit-identical results."""
    spec = _campaign_spec(TRIALS, sigmas=(0.1, 0.3, 0.6),
                          batch_size=max(TRIALS // 4, 1))

    def run(processes: int):
        start = time.perf_counter()
        result = run_variation_campaign(spec, processes=processes)
        return time.perf_counter() - start, result

    serial_elapsed, serial_result = benchmark.pedantic(
        lambda: run(1), rounds=1, iterations=1)
    pooled_elapsed, pooled_result = run(2)

    assert [e.aware_delays for e in serial_result.estimates] == \
           [e.aware_delays for e in pooled_result.estimates]
    assert [e.oblivious_delays for e in serial_result.estimates] == \
           [e.oblivious_delays for e in pooled_result.estimates]
    save_table("varsim_serial_vs_pooled", "\n".join([
        f"campaign: {len(serial_result.estimates)} sigmas x {spec.trials} "
        f"trials, crossbar {CROSSBAR}x{CROSSBAR}",
        f"serial   {serial_elapsed:8.3f}s  "
        f"({serial_result.trials_sampled / serial_elapsed:8.0f} trials/s)",
        f"pooled-2 {pooled_elapsed:8.3f}s  "
        f"({pooled_result.trials_sampled / pooled_elapsed:8.0f} trials/s)",
        "results bit-identical: yes",
    ]))


def test_varsim_warm_store(benchmark, save_table, tmp_path):
    """Second run against the persisted store is pure cache reads."""
    spec = _campaign_spec(TRIALS, sigmas=(0.2, 0.5))
    store = str(tmp_path / "campaigns.sqlite")

    start = time.perf_counter()
    cold = run_variation_campaign(spec, store=store)
    cold_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    warm = benchmark.pedantic(
        lambda: run_variation_campaign(spec, store=store),
        rounds=1, iterations=1)
    warm_elapsed = time.perf_counter() - start

    assert cold.cache_hits == 0
    assert warm.cache_hits == len(warm.estimates)
    assert [e.aware_delays for e in cold.estimates] == \
           [e.aware_delays for e in warm.estimates]
    save_table("varsim_warm_store", "\n".join([
        f"campaign store: {len(cold.estimates)} sigmas x {spec.trials} "
        "trials",
        f"cold {cold_elapsed:8.3f}s   warm {warm_elapsed:8.3f}s   "
        f"speedup {cold_elapsed / max(warm_elapsed, 1e-9):6.1f}x",
    ]))


# -- raw-speed core pass: delay-kernel backend comparison ----------------

def test_delay_kernel_backend_comparison(save_table, save_core_speed):
    """numpy vs the optional numba backend on the Bellman-Ford kernel.

    Where numba is installed (the dedicated CI job) the jitted kernel
    must be bit-identical to the vectorized numpy sweeps and >= 2x faster
    once warmed; without numba the section records "unavailable" so the
    committed artifact is honest about what it measured.
    """
    import numpy as np

    from repro.xbareval import backend
    from repro.xbareval.delay import best_path_delay_batch

    smoke = os.environ.get("CORE_SPEED_SMOKE") == "1" or SMOKE
    batch, rows, cols = (32, 24, 12) if smoke else (256, 48, 24)
    gen = np.random.default_rng(17)
    grids = gen.random((batch, rows, cols)) < 0.6
    resistance = 1.0 + gen.random((batch, rows, cols))

    def timed(repeats=3):
        elapsed = []
        for _ in range(repeats):
            start = time.perf_counter()
            out = best_path_delay_batch(grids, resistance)
            elapsed.append(time.perf_counter() - start)
        return out, min(elapsed)

    backend.reset_backend_cache()
    os.environ["NANOXBAR_BACKEND"] = "numpy"
    try:
        numpy_out, numpy_elapsed = timed()
        payload = {"smoke": smoke,
                   "workload": {"batch": batch, "rows": rows, "cols": cols},
                   "numpy_seconds": numpy_elapsed}
        os.environ["NANOXBAR_BACKEND"] = "numba"
        backend.reset_backend_cache()
        if backend.numba_kernels() is None:
            payload["numba"] = "unavailable"
            verdict = "numba unavailable (numpy-only environment)"
        else:
            timed()  # warm the jit cache outside the clock
            numba_out, numba_elapsed = timed()
            assert np.array_equal(numba_out, numpy_out)  # bit-identical
            speedup = numpy_elapsed / numba_elapsed
            payload["numba_seconds"] = numba_elapsed
            payload["numba_speedup"] = speedup
            if not smoke:
                assert speedup >= 2.0
            verdict = f"numba {speedup:.1f}x over numpy, bit-identical"
    finally:
        os.environ.pop("NANOXBAR_BACKEND", None)
        backend.reset_backend_cache()

    save_core_speed("delay_backend", payload)
    save_table("varsim_backend", "\n".join([
        f"delay kernel backend comparison ({batch}x{rows}x{cols})",
        f"numpy {numpy_elapsed:8.3f}s   {verdict}",
    ]))
