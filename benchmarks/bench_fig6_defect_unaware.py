"""E-FIG6: defect-aware vs defect-unaware design flow (paper Fig. 6).

Regenerates the flow-comparison table (recovered k, O(N) vs O(N^2) map
storage, per-application mapping cost) plus the k/N recovery curve, and
benchmarks the greedy clean-subarray extractor.
"""

import random

from repro.eval.experiments import get_experiment
from repro.reliability import greedy_clean_subarray, random_defect_map


def test_fig6_flow_table(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: get_experiment("fig6").run(True), rounds=1, iterations=1)
    save_table("fig6_defect_unaware", result.render())
    for row in result.rows:
        # storage: O(N) list beats the O(N^2) map
        assert row["unaware_map_words"] < row["aware_map_words"]
        # once the clean region fits, per-app mapping is free
        if row["avg_recovered_k"] >= 3:
            assert row["unaware_sessions/app"] == 0.0
        assert row["aware_sessions/app"] >= 1.0


def test_fig6_recovery_curve(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: get_experiment("recovery").run(True), rounds=1, iterations=1)
    save_table("fig6_recovery_curve", result.render())
    ks = [row["avg_k"] for row in result.rows]
    # graceful degradation: k/N decreases with density, never collapses at
    # the moderate densities swept here
    assert all(a >= b for a, b in zip(ks, ks[1:]))
    assert result.rows[0]["k_over_n"] == 1.0
    assert result.rows[-1]["k_over_n"] > 0.2


def test_fig6_extraction_speed(benchmark):
    rng = random.Random(3)
    maps = [random_defect_map(32, 32, 0.05, rng) for _ in range(10)]

    def run():
        return [greedy_clean_subarray(m).k for m in maps]

    ks = benchmark(run)
    assert all(k > 0 for k in ks)
