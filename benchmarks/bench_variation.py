"""E-VAR: variation tolerance (Section IV).

Regenerates the variation-aware vs oblivious mapping table and checks the
qualitative claim: awareness helps, and helps more as variation grows.
"""

import random

from repro.eval.experiments import get_experiment
from repro.reliability import lognormal_variation


def test_variation_table(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: get_experiment("variation").run(True), rounds=1, iterations=1)
    save_table("variation", result.render())
    for row in result.rows:
        assert row["aware_mean"] <= row["oblivious_mean"] * 1.02
    # the gain grows with sigma
    gains = [row["mean_gain"] for row in result.rows]
    assert gains[-1] > gains[0]


def test_variation_sampling_speed(benchmark):
    rng = random.Random(0)

    def run():
        return [lognormal_variation(16, 16, 0.5, rng) for _ in range(20)]

    maps = benchmark(run)
    assert len(maps) == 20
