"""xbareval throughput: scalar percolation loops vs the batched core.

Quantifies the tentpole claims of the evaluation core:

* ``Lattice.to_truth_table`` through the packed-bitset flood must beat the
  scalar 2^n union-find loop by >= 10x on 6-variable lattices, with
  bit-identical tables;
* batched placement-validity sweeps over a defect-map ensemble must agree
  verdict-for-verdict with the scalar ``placement_valid`` loop.

``XBAREVAL_SMOKE=1`` shrinks the workloads and relaxes the speedup floors
so the kernels can run as a CI smoke step on noisy shared runners (the
bit-exactness assertions stay strict).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.eval.benchsuite import standard_suite
from repro.faultlab import bernoulli_defect_batch
from repro.faultlab.kernels import sample_line_subsets
from repro.reliability.lattice_mapping import placement_valid
from repro.synthesis import fold_lattice, synthesize_lattice_dual
from repro.xbareval import (
    lattice_site_codes,
    lattice_truthtable,
    placement_valid_batch,
    percolation_duality_holds_batch,
)

SMOKE = os.environ.get("XBAREVAL_SMOKE") == "1"
#: Full-run floor is the acceptance criterion; the smoke floor only guards
#: against the vectorized path regressing to scalar speed.
MIN_TRUTHTABLE_SPEEDUP = 2.0 if SMOKE else 10.0
MIN_PLACEMENT_SPEEDUP = 2.0 if SMOKE else 5.0
TRUTHTABLE_REPEATS = 2 if SMOKE else 6
PLACEMENT_TRIALS = 200 if SMOKE else 2000


def _n6_lattices():
    """The 6-variable benchmark functions as dual-construction lattices.

    Unfolded and folded variants both appear — the shapes span 4x2 up to
    26x15, the regime the engine verifies candidates in.
    """
    lattices = []
    for bench in standard_suite():
        if bench.n != 6:
            continue
        dual = synthesize_lattice_dual(bench.function.on)
        lattices.append((f"{bench.name}", dual))
        folded = fold_lattice(dual, bench.function.on)
        if folded.shape != dual.shape:
            lattices.append((f"{bench.name}:folded", folded))
    return lattices


def test_truthtable_scalar_vs_batched(benchmark, save_table):
    """The acceptance ratio: batched to_truth_table >= 10x the scalar loop
    on 6-variable lattices, bit-identical tables."""
    lattices = _n6_lattices()
    assert lattices, "benchmark suite lost its 6-variable functions"
    for _, lattice in lattices:  # warm both paths (first-call setup)
        lattice.to_truth_table_scalar()
        lattice_truthtable(lattice)

    start = time.perf_counter()
    scalar_tables = [
        [lattice.to_truth_table_scalar() for _, lattice in lattices]
        for _ in range(TRUTHTABLE_REPEATS)
    ][-1]
    scalar_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    batched_tables = benchmark.pedantic(
        lambda: [
            [lattice_truthtable(lattice) for _, lattice in lattices]
            for _ in range(TRUTHTABLE_REPEATS)
        ][-1],
        rounds=1, iterations=1)
    batched_elapsed = time.perf_counter() - start

    assert batched_tables == scalar_tables  # bit-identical, per lattice
    speedup = scalar_elapsed / batched_elapsed
    evaluations = TRUTHTABLE_REPEATS * len(lattices)
    save_table("xbareval_truthtable", "\n".join([
        f"n=6 truth tables, {len(lattices)} lattices "
        f"({', '.join(f'{name} {lat.rows}x{lat.cols}' for name, lat in lattices)}), "
        f"{TRUTHTABLE_REPEATS} repeats",
        f"scalar  {scalar_elapsed:8.3f}s  "
        f"({evaluations / scalar_elapsed:8.1f} tables/s)",
        f"batched {batched_elapsed:8.3f}s  "
        f"({evaluations / batched_elapsed:8.1f} tables/s)",
        f"speedup {speedup:8.1f}x",
    ]))
    assert speedup >= MIN_TRUTHTABLE_SPEEDUP


def test_placement_validity_sweep(benchmark, save_table):
    """Batched placement checks over a whole defect ensemble: one kernel
    call vs one scalar placement_valid per fabric, identical verdicts."""
    target = None
    for bench in standard_suite():
        if bench.name == "fig4":
            target = fold_lattice(synthesize_lattice_dual(bench.function.on),
                                  bench.function.on)
    assert target is not None
    codes = lattice_site_codes(target)

    gen = np.random.default_rng(7)
    batch = bernoulli_defect_batch(PLACEMENT_TRIALS, 16, 16, 0.06, gen)
    row_maps = sample_line_subsets(gen, PLACEMENT_TRIALS, 16, target.rows)
    col_maps = sample_line_subsets(gen, PLACEMENT_TRIALS, 16, target.cols)

    def scalar_sweep():
        verdicts = []
        for trial in range(PLACEMENT_TRIALS):
            defect_map = batch.to_defect_map(trial)
            verdicts.append(placement_valid(
                target, defect_map,
                tuple(int(r) for r in row_maps[trial]),
                tuple(int(c) for c in col_maps[trial])))
        return verdicts

    def batched_sweep():
        return placement_valid_batch(batch.states, codes, row_maps,
                                     col_maps)

    # warm both paths so neither pays first-call setup in the timing
    placement_valid(target, batch.to_defect_map(0),
                    tuple(int(r) for r in row_maps[0]),
                    tuple(int(c) for c in col_maps[0]))
    batched_sweep()

    start = time.perf_counter()
    scalar_verdicts = scalar_sweep()
    scalar_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    batched_verdicts = benchmark.pedantic(batched_sweep, rounds=1,
                                          iterations=1)
    batched_elapsed = time.perf_counter() - start

    assert batched_verdicts.tolist() == scalar_verdicts
    speedup = scalar_elapsed / batched_elapsed
    save_table("xbareval_placement", "\n".join([
        f"placement validity, {PLACEMENT_TRIALS} fabrics 16x16 @ 6% "
        f"defects, target {target.rows}x{target.cols}",
        f"scalar  {scalar_elapsed:8.3f}s  "
        f"({PLACEMENT_TRIALS / scalar_elapsed:8.0f} checks/s)",
        f"batched {batched_elapsed:8.3f}s  "
        f"({PLACEMENT_TRIALS / batched_elapsed:8.0f} checks/s)",
        f"speedup {speedup:8.1f}x",
    ]))
    assert speedup >= MIN_PLACEMENT_SPEEDUP


def test_percolation_duality_smoke(save_table):
    """Tiny duality cross-check (the property suite does this
    exhaustively; this keeps the invariant visible in benchmark runs and
    in the CI smoke step)."""
    gen = np.random.default_rng(3)
    grids = gen.random((64, 8, 8)) < 0.5
    assert percolation_duality_holds_batch(grids).all()
    save_table("xbareval_duality",
               "percolation duality holds on 64 random 8x8 grids: yes")


# -- raw-speed core pass: tall grids past the single-word limit ----------

#: ``CORE_SPEED_SMOKE=1`` shrinks the tall-grid sweep for CI runners.
CORE_SMOKE = os.environ.get("CORE_SPEED_SMOKE") == "1" or SMOKE
#: Acceptance floor for the committed artifact (full run): the multi-word
#: packed flood must beat the boolean unpacked fallback >= 5x at 128 rows.
MIN_TALL_SPEEDUP = 1.2 if CORE_SMOKE else 5.0
#: (rows, cols, batch) tall regimes; both need > 1 uint64 word per column.
TALL_WORKLOADS = (((128, 10, 24), (256, 8, 16)) if CORE_SMOKE
                  else ((128, 64, 256), (256, 48, 192)))


def _best_of(fn, grids, repeats=3):
    elapsed = []
    for _ in range(repeats):
        start = time.perf_counter()
        out = fn(grids)
        elapsed.append(time.perf_counter() - start)
    return out, min(elapsed)


def test_tall_grid_multiword_flood(save_table, save_core_speed):
    """128/256-row grids: multi-word packed floods vs unpacked booleans.

    Grids taller than 64 rows used to silently fall off the packed fast
    path; the multi-word kernels keep them packed.  Verdicts must stay
    bit-identical to the unpacked reference for both flood duals.
    """
    from repro.xbareval import connectivity as conn

    rows_report = []
    lines = ["tall-grid flood: multi-word packed vs unpacked fallback",
             f"{'rows':>5s} {'cols':>5s} {'batch':>6s} "
             f"{'tb-speedup':>11s} {'lr-speedup':>11s}"]
    for rows, cols, batch in TALL_WORKLOADS:
        gen = np.random.default_rng(5)
        grids = gen.random((batch, rows, cols)) < 0.55
        tb_packed, tb_fast = _best_of(conn._top_bottom_connected_numpy,
                                      grids)
        tb_ref, tb_slow = _best_of(conn._top_bottom_connected_unpacked,
                                   grids)
        lr_packed, lr_fast = _best_of(conn._left_right_blocked_8_numpy,
                                      grids)
        lr_ref, lr_slow = _best_of(conn._left_right_blocked_8_unpacked,
                                   grids)
        assert np.array_equal(tb_packed, tb_ref)
        assert np.array_equal(lr_packed, lr_ref)
        tb_speedup = tb_slow / tb_fast
        lr_speedup = lr_slow / lr_fast
        assert tb_speedup >= MIN_TALL_SPEEDUP
        assert lr_speedup >= MIN_TALL_SPEEDUP
        rows_report.append({
            "rows": rows, "cols": cols, "batch": batch,
            "top_bottom_packed_seconds": tb_fast,
            "top_bottom_unpacked_seconds": tb_slow,
            "top_bottom_speedup": tb_speedup,
            "left_right_packed_seconds": lr_fast,
            "left_right_unpacked_seconds": lr_slow,
            "left_right_speedup": lr_speedup,
        })
        lines.append(f"{rows:5d} {cols:5d} {batch:6d} "
                     f"{tb_speedup:10.1f}x {lr_speedup:10.1f}x")
    save_core_speed("tall_grid_flood", {
        "smoke": CORE_SMOKE,
        "min_speedup": MIN_TALL_SPEEDUP,
        "workloads": rows_report,
    })
    save_table("xbareval_tall_grid", "\n".join(lines))
