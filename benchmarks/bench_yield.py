"""E-YIELD: manufacturing yield models (Section IV).

Regenerates the Monte-Carlo vs analytic yield table and checks the
defect-tolerance story: accepting k < N turns a collapsing full-array yield
into a high recovered yield.
"""

import random

from repro.eval.experiments import get_experiment
from repro.reliability import monte_carlo_yield


def test_yield_table(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: get_experiment("yield").run(True), rounds=1, iterations=1)
    save_table("yield", result.render())
    rows = result.rows
    # for k == N there is one candidate placement: MC must track the
    # analytic probability closely
    for row in rows:
        if row["k"] == row["N"]:
            assert abs(row["monte_carlo_yield"]
                       - row["fixed_placement_prob"]) < 0.15
    # smaller k -> higher yield at every density
    by_density: dict = {}
    for row in rows:
        by_density.setdefault(row["density"], []).append(row)
    for bucket in by_density.values():
        bucket.sort(key=lambda r: r["k"])
        yields = [r["monte_carlo_yield"] for r in bucket]
        assert all(a >= b - 1e-9 for a, b in zip(yields, yields[1:]))


def test_yield_monte_carlo_speed(benchmark):
    rng = random.Random(5)
    estimate = benchmark.pedantic(
        lambda: monte_carlo_yield(12, 9, 0.05, 50, rng),
        rounds=1, iterations=1)
    assert 0.0 <= estimate.yield_rate <= 1.0
