"""E-YIELD: manufacturing yield models (Section IV).

Regenerates the Monte-Carlo vs analytic yield table and checks the
defect-tolerance story: accepting k < N turns a collapsing full-array yield
into a high recovered yield.  The Monte-Carlo sweep itself runs through the
:mod:`repro.faultlab` campaign engine (vectorized batches, Wilson CIs,
analytic cross-checks) — the scalar ``monte_carlo_yield`` estimator stays
as the cross-validation baseline.
"""

import random

from repro.eval.experiments import get_experiment
from repro.faultlab import CampaignSpec, analytic_crosschecks, run_campaign
from repro.reliability import monte_carlo_yield


def test_yield_table(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: get_experiment("yield").run(True), rounds=1, iterations=1)
    save_table("yield", result.render())
    rows = result.rows
    # for k == N there is one candidate placement: MC must track the
    # analytic probability closely
    for row in rows:
        if row["k"] == row["N"]:
            assert abs(row["monte_carlo_yield"]
                       - row["fixed_placement_prob"]) < 0.15
    # smaller k -> higher yield at every density
    by_density: dict = {}
    for row in rows:
        by_density.setdefault(row["density"], []).append(row)
    for bucket in by_density.values():
        bucket.sort(key=lambda r: r["k"])
        yields = [r["monte_carlo_yield"] for r in bucket]
        assert all(a >= b - 1e-9 for a, b in zip(yields, yields[1:]))


def test_yield_campaign_sweep(benchmark, save_table):
    """The Section IV yield sweep, batched through the campaign runner."""
    spec = CampaignSpec(
        n_values=(12,), k_values=(6, 9, 12),
        densities=(0.01, 0.05, 0.1, 0.2),
        trials=500, seed=42, batch_size=125,
    )
    result = benchmark.pedantic(
        lambda: run_campaign(spec), rounds=1, iterations=1)
    save_table("yield_campaign", result.render())
    # Every Bernoulli row must respect the analytic Markov/exact bounds.
    assert all(c["within_markov"] and c["matches_exact"]
               for c in analytic_crosschecks(result))
    # Same monotonicity story as the scalar table: smaller k, higher yield.
    for est in result.estimates:
        yields = [est.yield_rate(k) for k in sorted(spec.k_values)]
        assert all(a >= b - 1e-9 for a, b in zip(yields, yields[1:]))
    # Campaign vs scalar estimator on one shared point (k=9, d=0.05): the
    # two independent samplers must land within joint Monte-Carlo noise.
    scalar = monte_carlo_yield(12, 9, 0.05, 400, random.Random(5))
    campaign_rate = result.estimates[
        [e.point.density for e in result.estimates].index(0.05)
    ].yield_rate(9)
    assert abs(scalar.yield_rate - campaign_rate) < 0.15


def test_yield_monte_carlo_speed(benchmark):
    rng = random.Random(5)
    estimate = benchmark.pedantic(
        lambda: monte_carlo_yield(12, 9, 0.05, 50, rng),
        rounds=1, iterations=1)
    assert 0.0 <= estimate.yield_rate <= 1.0
