"""E-METRICS: area / delay / power per array style (Section II).

The project overview promises evaluation "considering performance
parameters such as area, delay, power dissipation"; this bench regenerates
the cross-style table with the first-order technology models.
"""

from repro.crossbar import compare_styles
from repro.eval.benchsuite import by_name
from repro.eval.experiments import get_experiment


def test_metrics_table(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: get_experiment("metrics").run(True), rounds=1, iterations=1)
    save_table("metrics", result.render())
    assert result.rows
    by_bench: dict = {}
    for row in result.rows:
        by_bench.setdefault(row["benchmark"], {})[row["style"]] = row
    for styles in by_bench.values():
        assert set(styles) == {"diode", "fet", "lattice"}
        # only diode planes burn static power in these models
        assert styles["diode"]["power"] > styles["fet"]["power"]
        # every metric is positive and finite
        for row in styles.values():
            assert row["area"] > 0 and row["delay"] > 0 and row["power"] > 0


def test_metrics_computation_speed(benchmark):
    table = by_name("thr4_2").function.on

    metrics = benchmark(lambda: compare_styles(table))
    assert len(metrics) == 3
