"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table/figure of the paper (see DESIGN.md's
per-experiment index).  Rendered tables are written to
``benchmarks/results/<experiment>.txt`` so the artefacts survive pytest's
output capturing, and printed (visible with ``-s``).
"""

from __future__ import annotations

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_table(results_dir):
    """Persist a rendered experiment table and echo it."""

    def _save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save


@pytest.fixture
def save_core_speed(results_dir):
    """Merge one section into the raw-speed artifact.

    The core-speed story spans three benchmark files (tall-grid floods,
    backend comparison, engine dedup + preemption); each contributes its
    own section to ``results/BENCH_core_speed.json`` so a partial rerun
    refreshes only what it measured.
    """

    def _save(section: str, payload: dict) -> None:
        path = results_dir / "BENCH_core_speed.json"
        data = json.loads(path.read_text()) if path.exists() else {}
        data[section] = payload
        path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        print(f"\n[{section} merged into {path}]")

    return _save
