"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table/figure of the paper (see DESIGN.md's
per-experiment index).  Rendered tables are written to
``benchmarks/results/<experiment>.txt`` so the artefacts survive pytest's
output capturing, and printed (visible with ``-s``).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_table(results_dir):
    """Persist a rendered experiment table and echo it."""

    def _save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
