"""E-BISM: blind vs greedy vs hybrid self-mapping (Section IV-B).

Regenerates the density sweep and checks the paper's qualitative shape:
blind session counts explode with density, greedy stays flat, hybrid
tracks the cheaper strategy at both ends.
"""

import random

from repro.eval.experiments import get_experiment
from repro.reliability import as_program, blind_bism, random_defect_map


def test_bism_strategy_table(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: get_experiment("bism").run(True), rounds=1, iterations=1)
    save_table("bism_strategies", result.render())
    by_key = {(row["strategy"], row["density"]): row for row in result.rows}
    densities = sorted({row["density"] for row in result.rows})
    low, high = densities[0], densities[-1]

    # at zero density every strategy succeeds in one BIST session
    for strategy in ("blind", "greedy", "hybrid"):
        assert by_key[(strategy, low)].get("success") == 1.0
        assert by_key[(strategy, low)]["avg_bist"] == 1.0
    # blind degrades with density
    assert (by_key[("blind", high)]["avg_bist"]
            > 3 * by_key[("blind", low)]["avg_bist"])
    # greedy needs far fewer BIST sessions than blind at high density
    assert (by_key[("greedy", high)]["avg_bist"]
            < by_key[("blind", high)]["avg_bist"])
    # hybrid is never much worse than the better of the two (in sessions)
    for density in densities:
        best = min(by_key[("blind", density)]["avg_sessions"],
                   by_key[("greedy", density)]["avg_sessions"])
        assert by_key[("hybrid", density)]["avg_sessions"] <= best * 2.5 + 5


def test_bism_blind_throughput(benchmark):
    rng = random.Random(0)
    program = as_program([[True, False, True], [False, True, False]])
    maps = [random_defect_map(12, 12, 0.1, rng) for _ in range(20)]

    def run():
        local = random.Random(1)
        return sum(
            blind_bism(program, m, local, max_retries=100).success
            for m in maps
        )

    successes = benchmark(run)
    assert successes >= 15
