"""E-FIG5: four-terminal lattice sizes vs two-terminal arrays (paper Fig. 5).

Regenerates the cross-style area table and checks the paper's headline
claim — "four-terminal switch based implementations offer favorably better
crossbar sizes" — holds on a majority of the suite.
"""

from repro.eval.experiments import get_experiment


def test_fig5_lattice_size_table(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: get_experiment("fig5").run(True), rounds=1, iterations=1)
    save_table("fig5_lattice_sizes", result.render())
    assert result.rows
    for row in result.rows:
        # Fig. 5 formula shape: products(fD) x products(f)
        assert row["lattice"] == (row["p(fD)"], row["p(f)"])
    wins = sum(row["4T_wins"] for row in result.rows)
    assert wins >= len(result.rows) * 0.6, (
        f"lattices won only {wins}/{len(result.rows)} — the paper's claim "
        "should hold on a clear majority"
    )
