"""E-FIG4: the worked lattice example (paper Fig. 4).

Checks the hand lattice of the figure computes exactly
x1x2x3 + x1x2x5x6 + x2x3x4x5 + x4x5x6, regenerates the method-ladder table
and benchmarks the dual-based synthesis of the same function.
"""

from repro.eval.benchsuite import by_name
from repro.eval.experiments import get_experiment
from repro.synthesis import synthesize_lattice_dual


def test_fig4_ladder_table(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: get_experiment("fig4").run(True), rounds=1, iterations=1)
    save_table("fig4_example_lattice", result.render())
    by_method = {row["method"]: row for row in result.rows}
    assert by_method["paper Fig. 4 (hand)"]["area"] == 6
    assert by_method["paper Fig. 4 (hand)"]["implements"]
    formula_area = by_method["Fig. 5 formula [2]"]["area"]
    folded_area = by_method["formula + folding [11]"]["area"]
    assert formula_area >= folded_area >= 6


def test_fig4_dual_synthesis_speed(benchmark):
    table = by_name("fig4").function.on

    lattice = benchmark(lambda: synthesize_lattice_dual(table, verify=False))
    assert lattice.implements(table)
