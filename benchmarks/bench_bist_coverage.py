"""E-BIST: exhaustive BIST coverage with constant configurations (Section IV-A).

Regenerates the coverage/cost table and benchmarks full fault simulation of
the 8x8 suite (the heavy inner loop of self-test).
"""

from repro.eval.experiments import get_experiment
from repro.reliability import run_bist


def test_bist_coverage_table(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: get_experiment("bist").run(True), rounds=1, iterations=1)
    save_table("bist_coverage", result.render())
    for row in result.rows:
        assert row["coverage"] == 1.0, f"escapes on {row['crossbar']}"
        assert row["configs"] == 5
        assert row["configs"] < row["naive_configs"]


def test_bist_fault_simulation_speed(benchmark):
    report = benchmark.pedantic(lambda: run_bist(8, 8), rounds=1, iterations=1)
    assert report.coverage == 1.0
