"""E-TAB-PC: lattice synthesis with P-circuit decomposition (Section III-B.1).

Regenerates the decomposition-vs-direct area table ([5],[7]) and benchmarks
one full best-split search.
"""

from repro.eval.benchsuite import by_name
from repro.eval.experiments import get_experiment
from repro.synthesis import best_pcircuit


def test_pcircuit_table(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: get_experiment("pcircuit").run(True), rounds=1, iterations=1)
    save_table("pcircuit_decomposition", result.render())
    assert result.rows
    # correctness is enforced inside the flow; here check the table shape
    # and that decomposition finds at least one genuine improvement
    assert any(row["improves"] for row in result.rows), (
        "P-circuit preprocessing should reduce area on at least one benchmark"
    )


def test_pcircuit_best_split_speed(benchmark):
    table = by_name("sym5_23").function.on

    result = benchmark.pedantic(lambda: best_pcircuit(table),
                                rounds=1, iterations=1)
    assert result.lattice.implements(table)
