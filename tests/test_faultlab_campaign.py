"""Tests for the campaign runner, store persistence and reporting."""

import math

import pytest

from repro.engine import JsonStore
from repro.faultlab import (
    CampaignSpec,
    analytic_crosschecks,
    run_campaign,
    wilson_interval,
)
from repro.reliability import clean_placement_probability


def _small_spec(**overrides):
    params = dict(
        n_values=(8,), k_values=(4, 6, 8), densities=(0.02, 0.1),
        trials=60, batch_size=16, seed=1,
    )
    params.update(overrides)
    return CampaignSpec(**params)


class TestCampaignSpec:
    def test_grid_expansion(self):
        spec = CampaignSpec(
            n_values=(4, 8), k_values=(4,), densities=(0.1, 0.2),
            models=("bernoulli", "clustered"), strategies=("greedy",),
            trials=10,
        )
        points = spec.points()
        assert len(points) == 2 * 2 * 2
        assert len({p.key() for p in points}) == len(points)

    def test_validation(self):
        with pytest.raises(ValueError):
            _small_spec(n_values=())
        with pytest.raises(ValueError):
            _small_spec(densities=(1.5,))
        with pytest.raises(ValueError):
            _small_spec(models=("weird",))
        with pytest.raises(ValueError):
            _small_spec(strategies=("weird",))
        with pytest.raises(ValueError):
            _small_spec(trials=0)

    def test_exact_strategy_limited_to_small_n(self):
        from repro.faultlab import MAX_EXACT_N

        with pytest.raises(ValueError, match="exact"):
            _small_spec(n_values=(MAX_EXACT_N + 1,),
                        strategies=("greedy", "exact"))
        _small_spec(n_values=(MAX_EXACT_N,), strategies=("exact",))
        _small_spec(n_values=(MAX_EXACT_N + 1,), strategies=("greedy",))

    def test_accepts_lists(self):
        spec = CampaignSpec(n_values=[4], k_values=[2], densities=[0.1])
        assert spec.n_values == (4,)

    def test_entropy_is_content_addressed(self):
        a, b = _small_spec().points()[:2]
        assert a.entropy() != b.entropy()
        assert a.entropy() == _small_spec().points()[0].entropy()


class TestRunCampaign:
    def test_serial_equals_pooled_bit_exact(self):
        spec = _small_spec()
        serial = run_campaign(spec, processes=1)
        pooled = run_campaign(spec, processes=2)
        assert [e.k_histogram for e in serial.estimates] == \
               [e.k_histogram for e in pooled.estimates]

    def test_seeded_reproducibility_and_seed_sensitivity(self):
        spec = _small_spec(trials=120)
        again = run_campaign(spec)
        assert [e.k_histogram for e in run_campaign(spec).estimates] == \
               [e.k_histogram for e in again.estimates]
        other = run_campaign(_small_spec(trials=120, seed=2))
        assert [e.k_histogram for e in again.estimates] != \
               [e.k_histogram for e in other.estimates]

    def test_histograms_account_every_trial(self):
        result = run_campaign(_small_spec())
        for est in result.estimates:
            assert sum(est.k_histogram) == est.point.trials
            assert len(est.k_histogram) == est.point.n + 1

    def test_store_round_trip(self, tmp_path):
        path = str(tmp_path / "campaigns.sqlite")
        spec = _small_spec()
        cold = run_campaign(spec, store=path)
        warm = run_campaign(spec, store=path)
        assert cold.cache_hits == 0
        assert warm.cache_hits == len(warm.estimates)
        assert warm.trials_sampled == 0
        assert [e.k_histogram for e in cold.estimates] == \
               [e.k_histogram for e in warm.estimates]

    def test_corrupted_store_entry_recomputes(self, tmp_path):
        path = str(tmp_path / "campaigns.sqlite")
        spec = _small_spec(densities=(0.1,), k_values=(6,))
        cold = run_campaign(spec, store=path)
        with JsonStore(path) as store:
            key = spec.points()[0].key()
            store.put(key, {"k_histogram": [1, 2], "trials": 99})
        healed = run_campaign(spec, store=path)
        assert healed.cache_hits == 0
        assert [e.k_histogram for e in healed.estimates] == \
               [e.k_histogram for e in cold.estimates]

    def test_exact_strategy_bounds_greedy(self):
        greedy = run_campaign(_small_spec(n_values=(5,), trials=40,
                                          strategies=("greedy",)))
        exact = run_campaign(_small_spec(n_values=(5,), trials=40,
                                         strategies=("exact",)))
        for g_est, e_est in zip(greedy.estimates, exact.estimates):
            assert e_est.mean_k >= g_est.mean_k - 1e-9

    def test_clustered_model_runs(self):
        result = run_campaign(_small_spec(models=("clustered",), trials=30))
        assert all(sum(e.k_histogram) == 30 for e in result.estimates)

    def test_yield_monotone_in_k_and_density(self):
        result = run_campaign(_small_spec(trials=200))
        for est in result.estimates:
            rates = [est.yield_rate(k) for k in (4, 6, 8)]
            assert rates == sorted(rates, reverse=True)
        low, high = result.estimates[0], result.estimates[1]
        assert low.point.density < high.point.density
        assert low.mean_k >= high.mean_k


class TestReporting:
    def test_wilson_interval_basics(self):
        low, high = wilson_interval(0, 100)
        assert low == 0.0 and 0.0 < high < 0.06
        low, high = wilson_interval(100, 100)
        assert high == pytest.approx(1.0) and low > 0.94
        low, high = wilson_interval(50, 100)
        assert low < 0.5 < high
        assert wilson_interval(0, 0) == (0.0, 1.0)
        with pytest.raises(ValueError):
            wilson_interval(5, 4)

    def test_wilson_tightens_with_trials(self):
        narrow = wilson_interval(500, 1000)
        wide = wilson_interval(5, 10)
        assert narrow[1] - narrow[0] < wide[1] - wide[0]

    def test_rows_and_render(self):
        result = run_campaign(_small_spec())
        rows = result.rows()
        assert len(rows) == len(result.estimates) * 3
        for row in rows:
            assert 0.0 <= row["wilson_low"] <= row["yield"] \
                <= row["wilson_high"] <= 1.0
        text = result.render()
        assert "yield (Wilson 95% CI)" in text
        assert "recovered clean-k degradation" in text

    def test_analytic_crosschecks_pass_and_k_equals_n_is_exact(self):
        result = run_campaign(_small_spec(trials=400))
        checks = analytic_crosschecks(result)
        assert all(c["within_markov"] and c["matches_exact"]
                   for c in checks)
        full = [c for c in checks if c["k"] == c["N"]]
        assert full
        for check in full:
            assert check["exact_prob"] == pytest.approx(
                clean_placement_probability(check["N"], check["N"],
                                            check["density"]))
        partial = [c for c in checks if c["k"] != c["N"]]
        assert all(math.isnan(c["exact_prob"]) for c in partial)


class TestJsonStore:
    def test_round_trip_and_overwrite(self, tmp_path):
        with JsonStore(str(tmp_path / "s.sqlite")) as store:
            assert store.get("missing") is None
            store.put("a", {"x": 1})
            assert store.get("a") == {"x": 1}
            store.put("a", [1, 2, 3])
            assert store.get("a") == [1, 2, 3]
            assert len(store) == 1
            store.clear()
            assert len(store) == 0

    def test_unparseable_payload_reads_as_miss(self, tmp_path):
        path = str(tmp_path / "s.sqlite")
        with JsonStore(path) as store:
            store.put("k", {"ok": True})
            store._conn.execute(
                "UPDATE json_store SET payload = 'not json' WHERE key = 'k'")
            store._conn.commit()
            assert store.get("k") is None

    def test_persists_across_connections(self, tmp_path):
        path = str(tmp_path / "s.sqlite")
        with JsonStore(path) as store:
            store.put_many([("a", 1), ("b", {"c": [2]})])
        with JsonStore(path) as store:
            assert store.get("a") == 1
            assert store.get("b") == {"c": [2]}


class TestCli:
    def test_faultsim_smoke(self, capsys):
        from repro.eval.cli import main

        code = main(["faultsim", "--n", "8", "--densities", "0.05",
                     "--trials", "20", "--batch-size", "10", "--no-cache"])
        out = capsys.readouterr().out
        assert code == 0
        assert "faultlab campaign" in out
        assert "yield (Wilson 95% CI)" in out

    def test_faultsim_rejects_bad_grid(self, capsys):
        from repro.eval.cli import main

        code = main(["faultsim", "--n", "8", "--densities", "2.0",
                     "--trials", "5", "--no-cache"])
        assert code == 2
        assert "error:" in capsys.readouterr().err
