"""Regression suite for the portable popcount (numpy-1.x crash fix).

``np.bitwise_count`` only exists in numpy >= 2.0; the packed kernels in
``repro.xbareval.connectivity`` and ``repro.boolean.affine`` used to call
it unconditionally and crashed with ``AttributeError`` on a 1.x install.
Both now route through :data:`repro.boolean.bitops.popcount_u64`, whose
unpackbits fallback must agree with the native ufunc bit-for-bit on the
full uint64 range — asserted here regardless of which path is active.
"""

from __future__ import annotations

import numpy as np

from repro.boolean.bitops import (
    HAVE_NATIVE_POPCOUNT,
    popcount_u64,
    popcount_u64_multiword,
    popcount_u64_unpackbits,
)

_CORNERS = np.array(
    [0, 1, 2, 3, 0x8000000000000000, 0xFFFFFFFFFFFFFFFF,
     0xAAAAAAAAAAAAAAAA, 0x5555555555555555, 1 << 63, (1 << 63) | 1],
    dtype=np.uint64,
)


def test_fallback_matches_python_popcount_on_corners():
    got = popcount_u64_unpackbits(_CORNERS)
    want = [bin(int(v)).count("1") for v in _CORNERS]
    assert got.tolist() == want


def test_fallback_matches_selected_path_on_random_words():
    gen = np.random.default_rng(7)
    words = gen.integers(0, 1 << 64, size=(50, 13), dtype=np.uint64)
    fallback = popcount_u64_unpackbits(words)
    selected = popcount_u64(words)
    assert fallback.shape == words.shape
    assert np.array_equal(np.asarray(selected, dtype=np.int64),
                          np.asarray(fallback, dtype=np.int64))


def test_fallback_handles_empty_and_scalar_shapes():
    assert popcount_u64_unpackbits(np.zeros((0,), dtype=np.uint64)).shape \
        == (0,)
    assert popcount_u64_unpackbits(np.zeros((3, 0), dtype=np.uint64)).shape \
        == (3, 0)
    assert int(popcount_u64_unpackbits(np.uint64(0xFF))) == 8


def test_selection_matches_numpy_version():
    has_native = hasattr(np, "bitwise_count")
    assert HAVE_NATIVE_POPCOUNT == has_native
    if has_native:
        assert popcount_u64 is np.bitwise_count


def test_multiword_popcount_on_both_paths():
    """popcount_u64_multiword agrees with a per-word python popcount on
    both per-element implementations (native ufunc and the numpy-1.x
    unpackbits fallback), via the injection hook."""
    gen = np.random.default_rng(3)
    # (batch, words, cols) like the multi-word packed layout, 5 words so
    # a uint8 accumulator (max 64 * 5 = 320) would have overflowed
    tensor = gen.integers(0, 1 << 64, size=(4, 5, 6), dtype=np.uint64)
    tensor[0, :, 0] = np.uint64(0xFFFFFFFFFFFFFFFF)  # force 320 > 255
    want = np.array([[sum(bin(int(tensor[b, w, c])).count("1")
                          for w in range(tensor.shape[1]))
                      for c in range(tensor.shape[2])]
                     for b in range(tensor.shape[0])], dtype=np.int64)
    for impl in (popcount_u64, popcount_u64_unpackbits):
        got = popcount_u64_multiword(tensor, _popcount=impl)
        assert got.dtype == np.int64
        assert np.array_equal(got, want)
    # default path (whatever numpy provides) agrees too
    assert np.array_equal(popcount_u64_multiword(tensor), want)


def test_multiword_popcount_word_axis_and_empty():
    gen = np.random.default_rng(4)
    flat = gen.integers(0, 1 << 64, size=(7, 3), dtype=np.uint64)
    # word axis 1 on a (batch, words) layout -> per-batch totals
    want = [sum(bin(int(w)).count("1") for w in row) for row in flat]
    assert popcount_u64_multiword(flat).tolist() == want
    assert popcount_u64_multiword(
        np.zeros((2, 0, 5), dtype=np.uint64)).tolist() == [[0] * 5] * 2


def test_packed_flood_kernel_runs_on_fallback(monkeypatch):
    """The packed connectivity flood must work with the fallback popcount.

    Simulates a numpy-1.x install by forcing the unpackbits path into the
    kernel module, then exercises the packed flood (scipy label pass
    disabled so the popcount-using branch actually runs).
    """
    from repro.crossbar.paths import top_bottom_connected
    from repro.xbareval import backend, connectivity

    monkeypatch.setenv(backend.BACKEND_ENV, "numpy")
    backend.reset_backend_cache()
    monkeypatch.setattr(connectivity, "popcount_u64",
                        popcount_u64_unpackbits)
    monkeypatch.setattr(connectivity, "_ndimage", None)
    gen = np.random.default_rng(11)
    grids = gen.random((16, 5, 4)) < 0.55
    got = connectivity.top_bottom_connected_batch(grids)
    want = [top_bottom_connected(g.tolist()) for g in grids]
    assert got.tolist() == want


def test_parity_table_on_fallback(monkeypatch):
    """GF(2) parity tables must be identical under the fallback popcount."""
    from repro.boolean import affine

    native = affine.parity_table(5, 0b10110, True)
    monkeypatch.setattr(affine, "popcount_u64", popcount_u64_unpackbits)
    fallback = affine.parity_table(5, 0b10110, True)
    assert native == fallback
