"""Tests for multi-output shared diode planes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.boolean import TruthTable
from repro.synthesis import MultiOutputDiodePlane, shared_plane_report


def adder_tables(width=1):
    n = 2 * width

    def bit(out):
        def value(m):
            a = m & ((1 << width) - 1)
            b = m >> width
            return bool(((a + b) >> out) & 1)

        return TruthTable.from_callable(n, value)

    return [bit(i) for i in range(width + 1)]


class TestMultiOutputPlane:
    def test_full_adder_shared_plane_implements(self):
        plane = MultiOutputDiodePlane(adder_tables())
        assert plane.implements_all()

    def test_joint_minimization_beats_union_on_memory_bundle(self):
        # ROM-style outputs overlap in minterms: the joint minimizer must
        # find rows serving several outputs, beating the naive cover union.
        contents = [0b1010, 0b0111, 0b1100, 0b0011, 0b1111, 0b0001, 0b1000,
                    0b0110]
        tables = [
            TruthTable.from_callable(3, lambda m, o=o: bool((contents[m] >> o) & 1))
            for o in range(4)
        ]
        joint = MultiOutputDiodePlane(tables, mode="joint")
        union = MultiOutputDiodePlane(tables, mode="union")
        assert joint.implements_all() and union.implements_all()
        assert joint.num_rows < union.num_rows

    def test_sharing_saves_area_on_fanout_bundle(self):
        # Replicated outputs (fan-out buffering) are the extreme sharing
        # case: one row set serves every output column.
        g = TruthTable.from_callable(5, lambda m: bin(m).count("1") > 2)
        report = shared_plane_report([g, g, g])
        assert report.shared_area < report.independent_area
        assert report.saving > 0

    def test_sharing_can_lose_on_disjoint_covers(self):
        # lt/gt covers share neither products nor literals: the shared
        # plane honestly costs more than independent planes.
        n = 4

        def unpack(m):
            return m & 0b11, m >> 2

        tables = [
            TruthTable.from_callable(n, lambda m: unpack(m)[0] < unpack(m)[1]),
            TruthTable.from_callable(n, lambda m: unpack(m)[0] > unpack(m)[1]),
        ]
        report = shared_plane_report(tables)
        assert report.shared_area > report.independent_area

    def test_identical_outputs_share_all_rows(self):
        t = TruthTable.from_minterms(3, [1, 3, 6])
        plane = MultiOutputDiodePlane([t, t])
        single = MultiOutputDiodePlane([t])
        assert plane.num_rows == single.num_rows
        assert plane.num_cols == single.num_cols + 1

    def test_disjoint_outputs_no_row_sharing(self):
        a = TruthTable.from_minterms(2, [3])       # x1 x2
        b = TruthTable.from_minterms(2, [0])       # x1' x2'
        plane = MultiOutputDiodePlane([a, b])
        assert plane.num_rows == 2
        assert plane.output_rows[0].isdisjoint(plane.output_rows[1])

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiOutputDiodePlane([])
        with pytest.raises(ValueError):
            MultiOutputDiodePlane([TruthTable.constant(2, True),
                                   TruthTable.constant(3, True)])
        with pytest.raises(ValueError):
            MultiOutputDiodePlane([TruthTable.constant(2, False)])

    def test_evaluate_packs_outputs(self):
        a = TruthTable.variable(2, 0)
        b = TruthTable.variable(2, 1)
        plane = MultiOutputDiodePlane([a, b])
        assert plane.evaluate(0b01) == 0b01
        assert plane.evaluate(0b10) == 0b10
        assert plane.evaluate(0b11) == 0b11

    @given(st.lists(
        st.integers(min_value=1, max_value=254), min_size=1, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_random_bundles_implement(self, bit_patterns):
        tables = [TruthTable.from_bits(3, bits) for bits in bit_patterns]
        plane = MultiOutputDiodePlane(tables)
        assert plane.implements_all()
        # shared never beats the sum of per-output rows
        assert plane.num_rows <= sum(
            c.num_products for c in plane.covers
        )

    def test_report_fields(self):
        report = shared_plane_report(adder_tables())
        assert report.num_outputs == 2
        assert report.shared_area == report.shared_rows * report.shared_cols
        assert report.saving == report.independent_area - report.shared_area
