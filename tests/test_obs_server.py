"""End-to-end observability tests: traces and metrics through the server.

One in-process listener (``serve_in_thread``) backs the module, so the
span ring and the process-global metrics registry are shared with the
test — a submitted job's trace can be inspected directly.
"""

from __future__ import annotations

import re
import time
from http.client import HTTPConnection

import pytest

from repro.obs import recent_spans
from repro.server import ServerClient, serve_in_thread

FAULTSIM_PAYLOAD = {
    "kind": "faultsim", "n_values": [6], "k_values": [3],
    "densities": [0.05], "trials": 20, "batch_size": 10,
}

_SAMPLE_LINE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (\S+)$")


@pytest.fixture(scope="module")
def server():
    handle = serve_in_thread(processes=1, job_workers=2)
    yield handle
    handle.server.request_stop()
    handle.thread.join(timeout=30)


@pytest.fixture()
def client(server):
    return ServerClient(port=server.port, timeout=120.0)


def _parse_samples(text: str) -> dict[str, float]:
    """Exposition text -> {series-with-labels: value} (skips comments)."""
    samples: dict[str, float] = {}
    for line in text.rstrip("\n").split("\n"):
        if line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        assert match, f"malformed exposition line: {line!r}"
        samples[match.group(1) + (match.group(2) or "")] = \
            float(match.group(3))
    return samples


class TestTracePropagation:
    def test_one_job_traces_across_layers(self, client):
        submitted = client.submit({
            "kind": "synthesis",
            "jobs": [{"n": 2, "bits": 0b0110, "label": "trace-probe"}],
        })
        trace_id = submitted["trace_id"]
        assert re.fullmatch(r"[0-9a-f]{16}", trace_id)
        result = client.result(submitted["job_id"])
        assert result["state"] == "done"
        # Spans land in the ring asynchronously relative to the HTTP
        # result; poll briefly for the full set.
        deadline = time.monotonic() + 5.0
        wanted = {"server.queue_wait", "worker.submission",
                  "engine.run_batch", "pool.shard"}
        while time.monotonic() < deadline:
            names = {s["name"] for s in recent_spans(trace_id=trace_id)}
            if wanted <= names:
                break
            time.sleep(0.05)
        assert wanted <= names, f"trace only covered {sorted(names)}"

    def test_status_reports_the_trace_id(self, client):
        submitted = client.submit({
            "kind": "synthesis",
            "jobs": [{"n": 2, "bits": 0b1000, "label": "status-probe"}],
        })
        status = client.status(submitted["job_id"])
        assert status["trace_id"] == submitted["trace_id"]

    def test_coalesced_submission_shares_the_trace(self, client):
        payload = {
            "kind": "synthesis",
            "jobs": [{"n": 2, "bits": 0b0001, "label": "coalesce-probe"}],
        }
        first = client.submit(payload)
        second = client.submit(payload)
        assert second["coalesced"]
        assert second["trace_id"] == first["trace_id"]
        client.result(first["job_id"])


class TestMetricsEndpoint:
    def test_exposition_parses_and_counters_are_monotonic(self, client):
        before = _parse_samples(client.metrics())
        one = client.run({
            "kind": "synthesis",
            "jobs": [{"n": 3, "bits": 0b10010110, "label": "scrape-a"}],
        })
        assert one["state"] == "done"
        two = client.run(FAULTSIM_PAYLOAD)
        assert two["state"] == "done"
        after = _parse_samples(client.metrics())
        # Counter series never move backwards between scrapes.
        for series, value in before.items():
            if series.endswith("_total") or "_total{" in series \
                    or "_bucket{" in series or "_count" in series:
                assert after.get(series, 0) >= value, series
        synth = 'server_jobs_total{kind="synthesis",state="done"}'
        fault = 'server_jobs_total{kind="faultsim",state="done"}'
        assert after[synth] >= before.get(synth, 0) + 1
        assert after[fault] >= before.get(fault, 0) + 1
        assert after["engine_jobs_total"] >= \
            before.get("engine_jobs_total", 0) + 1

    def test_per_family_and_per_strategy_series_present(self, client):
        client.run({
            "kind": "synthesis",
            "jobs": [{"n": 3, "bits": 0b01101001, "label": "series-b"}],
        })
        text = client.metrics()
        assert re.search(
            r'^server_queue_wait_seconds_bucket\{kind="synthesis",'
            r'le="\+Inf"\} [1-9]', text, re.M)
        assert re.search(
            r'^engine_strategy_seconds_count\{strategy="dual"\} [1-9]',
            text, re.M)
        assert "# TYPE server_queue_wait_seconds histogram" in text
        assert "# TYPE engine_strategy_wins_total counter" in text

    def test_content_type_is_prometheus_text(self, server):
        conn = HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            conn.request("GET", "/api/metrics")
            response = conn.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type") == \
                "text/plain; version=0.0.4; charset=utf-8"
            response.read()
        finally:
            conn.close()


class TestStatsEndpoint:
    def test_stats_carries_metrics_snapshot_and_spans(self, client):
        client.run({
            "kind": "synthesis",
            "jobs": [{"n": 2, "bits": 0b0111, "label": "stats-probe"}],
        })
        stats = client.stats()
        assert "metrics" in stats and "recent_spans" in stats
        snapshot = stats["metrics"]
        assert snapshot["counters"]["engine_jobs_total"][""] >= 1
        histograms = snapshot["histograms"]["engine_batch_seconds"][""]
        assert histograms["count"] >= 1
        assert {"p50", "p90", "p99", "buckets"} <= set(histograms)
        assert len(stats["recent_spans"]) >= 1
        assert {"name", "trace_id", "span_id", "duration"} <= \
            set(stats["recent_spans"][0])
