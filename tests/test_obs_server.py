"""End-to-end observability tests: traces and metrics through the server.

One in-process listener (``serve_in_thread``) backs the module, so the
span ring and the process-global metrics registry are shared with the
test — a submitted job's trace can be inspected directly.
"""

from __future__ import annotations

import json
import re
import threading
import time
from http.client import HTTPConnection

import pytest

from repro.obs import recent_spans
from repro.server import ServerClient, serve_in_thread

FAULTSIM_PAYLOAD = {
    "kind": "faultsim", "n_values": [6], "k_values": [3],
    "densities": [0.05], "trials": 20, "batch_size": 10,
}

_SAMPLE_LINE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (\S+)$")


@pytest.fixture(scope="module")
def server():
    # A fast recorder tick keeps the history/SSE tests from sleeping
    # through 1s production frames.
    handle = serve_in_thread(processes=1, job_workers=2, obs_tick=0.05)
    yield handle
    handle.server.request_stop()
    handle.thread.join(timeout=30)


@pytest.fixture()
def client(server):
    return ServerClient(port=server.port, timeout=120.0)


def _parse_samples(text: str) -> dict[str, float]:
    """Exposition text -> {series-with-labels: value} (skips comments)."""
    samples: dict[str, float] = {}
    for line in text.rstrip("\n").split("\n"):
        if line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        assert match, f"malformed exposition line: {line!r}"
        samples[match.group(1) + (match.group(2) or "")] = \
            float(match.group(3))
    return samples


class TestTracePropagation:
    def test_one_job_traces_across_layers(self, client):
        submitted = client.submit({
            "kind": "synthesis",
            "jobs": [{"n": 2, "bits": 0b0110, "label": "trace-probe"}],
        })
        trace_id = submitted["trace_id"]
        assert re.fullmatch(r"[0-9a-f]{16}", trace_id)
        result = client.result(submitted["job_id"])
        assert result["state"] == "done"
        # Spans land in the ring asynchronously relative to the HTTP
        # result; poll briefly for the full set.
        deadline = time.monotonic() + 5.0
        wanted = {"server.queue_wait", "worker.submission",
                  "engine.run_batch", "pool.shard"}
        while time.monotonic() < deadline:
            names = {s["name"] for s in recent_spans(trace_id=trace_id)}
            if wanted <= names:
                break
            time.sleep(0.05)
        assert wanted <= names, f"trace only covered {sorted(names)}"

    def test_status_reports_the_trace_id(self, client):
        submitted = client.submit({
            "kind": "synthesis",
            "jobs": [{"n": 2, "bits": 0b1000, "label": "status-probe"}],
        })
        status = client.status(submitted["job_id"])
        assert status["trace_id"] == submitted["trace_id"]

    def test_coalesced_submission_shares_the_trace(self, client):
        payload = {
            "kind": "synthesis",
            "jobs": [{"n": 2, "bits": 0b0001, "label": "coalesce-probe"}],
        }
        first = client.submit(payload)
        second = client.submit(payload)
        assert second["coalesced"]
        assert second["trace_id"] == first["trace_id"]
        client.result(first["job_id"])


class TestMetricsEndpoint:
    def test_exposition_parses_and_counters_are_monotonic(self, client):
        before = _parse_samples(client.metrics())
        one = client.run({
            "kind": "synthesis",
            "jobs": [{"n": 3, "bits": 0b10010110, "label": "scrape-a"}],
        })
        assert one["state"] == "done"
        two = client.run(FAULTSIM_PAYLOAD)
        assert two["state"] == "done"
        after = _parse_samples(client.metrics())
        # Counter series never move backwards between scrapes.
        for series, value in before.items():
            if series.endswith("_total") or "_total{" in series \
                    or "_bucket{" in series or "_count" in series:
                assert after.get(series, 0) >= value, series
        synth = 'server_jobs_total{kind="synthesis",state="done"}'
        fault = 'server_jobs_total{kind="faultsim",state="done"}'
        assert after[synth] >= before.get(synth, 0) + 1
        assert after[fault] >= before.get(fault, 0) + 1
        assert after["engine_jobs_total"] >= \
            before.get("engine_jobs_total", 0) + 1

    def test_per_family_and_per_strategy_series_present(self, client):
        client.run({
            "kind": "synthesis",
            "jobs": [{"n": 3, "bits": 0b01101001, "label": "series-b"}],
        })
        text = client.metrics()
        assert re.search(
            r'^server_queue_wait_seconds_bucket\{kind="synthesis",'
            r'le="\+Inf"\} [1-9]', text, re.M)
        assert re.search(
            r'^engine_strategy_seconds_count\{strategy="dual"\} [1-9]',
            text, re.M)
        assert "# TYPE server_queue_wait_seconds histogram" in text
        assert "# TYPE engine_strategy_wins_total counter" in text

    def test_content_type_is_prometheus_text(self, server):
        conn = HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            conn.request("GET", "/api/metrics")
            response = conn.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type") == \
                "text/plain; version=0.0.4; charset=utf-8"
            response.read()
        finally:
            conn.close()


class TestStatsEndpoint:
    def test_stats_carries_metrics_snapshot_and_spans(self, client):
        client.run({
            "kind": "synthesis",
            "jobs": [{"n": 2, "bits": 0b0111, "label": "stats-probe"}],
        })
        stats = client.stats()
        assert "metrics" in stats and "recent_spans" in stats
        snapshot = stats["metrics"]
        assert snapshot["counters"]["engine_jobs_total"][""] >= 1
        histograms = snapshot["histograms"]["engine_batch_seconds"][""]
        assert histograms["count"] >= 1
        assert {"p50", "p90", "p99", "buckets"} <= set(histograms)
        assert len(stats["recent_spans"]) >= 1
        assert {"name", "trace_id", "span_id", "duration"} <= \
            set(stats["recent_spans"][0])

    def test_stats_carries_health_and_resources(self, client):
        stats = client.stats()
        assert stats["health"]["status"] in ("ok", "degraded")
        assert len(stats["health"]["rules"]) == 4
        assert stats["resources"] is None \
            or stats["resources"]["rss_bytes"] > 0


class TestHistoryEndpoint:
    def test_cursor_pages_are_monotonic_and_lossless(self, client):
        first = client.history()
        deadline = time.monotonic() + 30.0
        second = client.history(since=first["cursor"])
        while not second["frames"] and time.monotonic() < deadline:
            time.sleep(0.1)
            second = client.history(since=first["cursor"])
        cursors = [f["cursor"] for f in first["frames"] + second["frames"]]
        assert cursors == sorted(cursors)
        assert len(set(cursors)) == len(cursors)
        assert all(f["cursor"] > first["cursor"]
                   for f in second["frames"])
        assert second["interval"] == pytest.approx(0.05)

    def test_frames_reflect_served_traffic(self, client):
        before = client.history()["cursor"]
        client.run({
            "kind": "synthesis",
            "jobs": [{"n": 2, "bits": 0b0100, "label": "history-probe"}],
        })
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            frames = client.history(since=before)["frames"]
            done = sum(
                entry["delta"]
                for frame in frames
                for key, entry in frame["counters"].items()
                if key.startswith("server_jobs_total{")
                and 'state="done"' in key)
            if done >= 1:
                break
            time.sleep(0.1)
        assert done >= 1

    def test_bad_query_params_answer_400(self, server):
        conn = HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            conn.request("GET", "/api/metrics/history?since=banana")
            assert conn.getresponse().status == 400
        finally:
            conn.close()
        conn = HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            conn.request("GET", "/api/metrics/history?resolution=medium")
            assert conn.getresponse().status == 400
        finally:
            conn.close()


class TestSSEStream:
    def test_two_concurrent_readers_see_every_frame(self, client, server):
        start = client.history()["cursor"]
        results: dict[str, list[int]] = {"a": [], "b": []}
        errors: list[BaseException] = []

        def read(name: str) -> None:
            try:
                reader = ServerClient(port=server.port, timeout=60.0)
                for frame in reader.stream_metrics(since=start):
                    results[name].append(frame["cursor"])
                    if len(results[name]) >= 4:
                        return
            except BaseException as error:  # re-raised below
                errors.append(error)

        threads = [threading.Thread(target=read, args=(name,))
                   for name in results]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        for cursors in results.values():
            # Contiguous from the shared start cursor: no frame lost,
            # none duplicated, for either reader.
            assert cursors == list(range(start + 1, start + 5))

    def test_stream_resumes_from_cursor(self, client, server):
        head = client.history()["cursor"]
        reader = ServerClient(port=server.port, timeout=60.0)
        stream = reader.stream_metrics(since=max(0, head - 2))
        first = next(stream)
        assert first["cursor"] > max(0, head - 2)
        stream.close()


class TestProfileEndpoint:
    def test_collapsed_stacks_are_well_formed(self, client):
        text = client.profile(seconds=0.3, interval_ms=2)
        for line in text.rstrip("\n").split("\n"):
            if not line:
                continue
            path, _, count = line.rpartition(" ")
            assert count.isdigit() and int(count) >= 1, line
            for label in path.split(";"):
                assert ":" in label, line

    def test_json_format_carries_top_table(self, server):
        conn = HTTPConnection("127.0.0.1", server.port, timeout=60)
        try:
            conn.request("GET", "/api/profile?seconds=0.2&format=json")
            response = conn.getresponse()
            assert response.status == 200
            payload = json.loads(response.read())
        finally:
            conn.close()
        assert payload["duration_seconds"] >= 0.2
        assert payload["total_samples"] >= 0
        assert isinstance(payload["top"], list)

    def test_bad_format_answers_400(self, server):
        conn = HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            conn.request("GET", "/api/profile?seconds=0.1&format=svg")
            assert conn.getresponse().status == 400
        finally:
            conn.close()


class TestDashboard:
    def test_served_page_is_self_contained(self, client, server):
        html = client.dashboard()
        assert html.lstrip().startswith("<!DOCTYPE html>")
        assert "<canvas" in html
        assert "EventSource" in html
        assert "/api/metrics/stream" in html
        # Self-contained: no external fetches of any kind.
        assert "http://" not in html and "https://" not in html
        conn = HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            conn.request("GET", "/dashboard")
            response = conn.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type") == \
                "text/html; charset=utf-8"
            response.read()
        finally:
            conn.close()


class TestHealthWatchdogs:
    def test_healthz_degrades_and_recovers(self):
        # A private fast-tick server with a hair-trigger watchdog: the
        # stock rules would need sustained real load to trip.
        from repro.obs import registry
        from repro.obs.health import WatchdogRule

        rule = WatchdogRule("probe-errors", "rate_threshold",
                            "probe_errors_total", threshold=0.5,
                            window=2, clear_after=3)
        handle = serve_in_thread(obs_tick=0.05, health_rules=(rule,))
        client = ServerClient(port=handle.port, timeout=30.0)
        try:
            client.wait_healthy()
            assert client.health()["status"] == "ok"
            probe = registry().counter("probe_errors_total", "test probe")

            def wait_status(wanted: str) -> dict:
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    health = client.health()
                    if health["status"] == wanted:
                        return health
                    if wanted == "degraded":
                        probe.inc(1000)  # keep the error burst going
                    time.sleep(0.05)
                raise AssertionError(
                    f"health status never reached {wanted}: {health}")

            probe.inc(1000)
            degraded = wait_status("degraded")
            assert degraded["alerts"][0]["rule"] == "probe-errors"
            # Burst over: quiet ticks must clear the alert.
            wait_status("ok")
        finally:
            handle.server.request_stop()
            handle.thread.join(timeout=30)
