"""The invariant lint engine: rules, suppressions, reports (``nanoxbar lint``).

Each rule carries its own fire / no-fire fixture snippets; the first test
here replays exactly what ``nanoxbar lint --self-test`` runs, and the
parametrized tests re-assert every snippet individually so a regression
names the precise rule and snippet that broke.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    all_rules,
    lint_paths,
    lint_source,
    render_json,
    rule_catalog,
    run_selftest,
)
from repro.analysis.linting import (
    PRAGMA_RULE_ID,
    LintReport,
    module_name_for_path,
    parse_suppressions,
)

RULES = all_rules()
RULE_IDS = [rule.rule_id for rule in RULES]


def _one_rule(rule_id):
    (rule,) = [r for r in all_rules() if r.rule_id == rule_id]
    return rule


def _lint_with(rule_id: str, source: str) -> list:
    rule = _one_rule(rule_id)
    findings = lint_source(source, module=rule.selftest_module,
                           rules=[rule])
    return [f for f in findings if f.rule_id == rule_id]


# ---------------------------------------------------------------- catalog

def test_selftest_passes():
    result = run_selftest()
    assert result.ok, result.render()


def test_catalog_covers_all_three_categories():
    categories = {entry["category"] for entry in rule_catalog()}
    assert categories == {"determinism", "concurrency", "layering"}


def test_rule_ids_are_unique_and_namespaced():
    assert len(set(RULE_IDS)) == len(RULE_IDS)
    assert all(rid.startswith("NX") for rid in RULE_IDS)
    assert PRAGMA_RULE_ID not in RULE_IDS  # reserved, not a walkable rule


# ------------------------------------------------- per-rule fire / no-fire

@pytest.mark.parametrize("rule_id,snippet", [
    (rule.rule_id, snippet) for rule in RULES for snippet in rule.fires
])
def test_rule_fires(rule_id, snippet):
    assert _lint_with(rule_id, snippet), (
        f"{rule_id} should fire on:\n{snippet}")


@pytest.mark.parametrize("rule_id,snippet", [
    (rule.rule_id, snippet) for rule in RULES for snippet in rule.clean
])
def test_rule_stays_quiet(rule_id, snippet):
    findings = _lint_with(rule_id, snippet)
    assert not findings, (
        f"{rule_id} false positive on:\n{snippet}\n"
        + "\n".join(f.render() for f in findings))


def test_rules_scope_limited_outside_their_modules():
    # Module-level RNG is a determinism-scope rule: the same source that
    # fires inside a campaign kernel is legal in, say, repro.obs.
    source = "import numpy as np\nnp.random.seed(0)\n"
    assert _lint_with("NX101", source)
    rule = _one_rule("NX101")
    findings = lint_source(source, module="repro.obs.metrics",
                           rules=[rule])
    assert not [f for f in findings if f.rule_id == "NX101"]


# ------------------------------------------------------------ suppressions

_VIOLATION = "import numpy as np\nnp.random.seed(0)"


def test_pragma_suppresses_on_the_same_line():
    source = ("import numpy as np\n"
              "np.random.seed(0)  # nanoxbar: allow[NX101] -- golden-file "
              "regeneration script\n")
    findings = lint_source(source, module="repro.faultlab.kernels")
    nx101 = [f for f in findings if f.rule_id == "NX101"]
    assert len(nx101) == 1
    assert nx101[0].suppressed
    assert "golden-file" in nx101[0].reason
    report = LintReport(findings=findings, files_checked=1)
    assert report.exit_code == 0


def test_pragma_only_covers_its_own_line():
    source = ("import numpy as np  # nanoxbar: allow[NX101] -- wrong line\n"
              "np.random.seed(0)\n")
    findings = lint_source(source, module="repro.faultlab.kernels")
    assert any(f.rule_id == "NX101" and not f.suppressed for f in findings)
    # ... and the pragma itself is flagged as unused.
    assert any(f.rule_id == PRAGMA_RULE_ID for f in findings)


def test_pragma_without_reason_is_rejected():
    source = _VIOLATION + "  # nanoxbar: allow[NX101]\n"
    findings = lint_source(source, module="repro.faultlab.kernels")
    assert any(f.rule_id == PRAGMA_RULE_ID and "reason" in f.message
               for f in findings)
    # The violation itself stays unsuppressed.
    assert any(f.rule_id == "NX101" and not f.suppressed for f in findings)


def test_pragma_with_unknown_rule_id_is_rejected():
    source = _VIOLATION + "  # nanoxbar: allow[NX999] -- no such rule\n"
    findings = lint_source(source, module="repro.faultlab.kernels")
    assert any(f.rule_id == PRAGMA_RULE_ID and "NX999" in f.message
               for f in findings)


def test_unused_pragma_is_flagged():
    source = "x = 1  # nanoxbar: allow[NX101] -- nothing here\n"
    findings = lint_source(source, module="repro.faultlab.kernels")
    assert any(f.rule_id == PRAGMA_RULE_ID and "unused" in f.message
               for f in findings)


def test_pragma_rule_itself_cannot_be_suppressed():
    source = f"x = 1  # nanoxbar: allow[{PRAGMA_RULE_ID}] -- nice try\n"
    findings = lint_source(source, module=None)
    assert any(f.rule_id == PRAGMA_RULE_ID and "cannot be suppressed"
               in f.message for f in findings)


def test_pragma_mentioned_in_a_docstring_is_not_a_pragma():
    source = ('"""Docs: write `# nanoxbar: allow[broken syntax` here."""\n'
              "x = 1\n")
    findings = lint_source(source, module=None)
    assert not findings


def test_multi_id_pragma_and_parse_suppressions_roundtrip():
    known = set(RULE_IDS)
    source = "x = 1  # nanoxbar: allow[NX101, NX104] -- both rules\n"
    sups, problems = parse_suppressions(source, known)
    assert not problems
    assert len(sups) == 1
    assert sups[0].rule_ids == ("NX101", "NX104")
    assert sups[0].reason == "both rules"


# --------------------------------------------------------------- reporting

def test_syntax_error_becomes_a_finding_not_a_crash():
    findings = lint_source("def broken(:\n", path="bad.py")
    assert findings and findings[0].rule_id == PRAGMA_RULE_ID
    assert "cannot parse" in findings[0].message


def test_module_name_for_path():
    assert (module_name_for_path("src/repro/engine/pool.py")
            == "repro.engine.pool")
    assert (module_name_for_path("src/repro/analysis/__init__.py")
            == "repro.analysis")
    assert module_name_for_path("benchmarks/bench_yield.py") is None


def test_lint_paths_json_report_shape(tmp_path):
    target = tmp_path / "kernels.py"
    target.write_text("import numpy as np\nnp.random.seed(7)\n")
    report = lint_paths([str(tmp_path)])
    # Out-of-tree files still get determinism rules (out-of-tree policy).
    assert report.files_checked == 1
    payload = json.loads(render_json(report))
    assert payload["version"] == 1
    assert payload["counts"]["findings"] == len(payload["findings"])
    for entry in payload["findings"]:
        assert {"rule", "path", "line", "col", "message",
                "suppressed"} <= set(entry)
