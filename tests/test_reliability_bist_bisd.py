"""Tests for BIST (100% coverage, constant configurations) and BISD
(logarithmic block-code diagnosis)."""

import math

import pytest

from repro.reliability import (
    CrossbarFabric,
    CrosspointStuckClosed,
    CrosspointStuckOpen,
    DefectMap,
    CrosspointState,
    application_bist_passes,
    bist_configurations,
    coverage,
    diagnose,
    diagnose_fault,
    diagnosis_configurations,
    run_bisd,
    run_bist,
    verify_full_coverage,
)
from repro.reliability.bisd import Diagnosis, signature


class TestBist:
    @pytest.mark.parametrize("rows,cols", [(2, 2), (3, 3), (4, 4), (3, 5), (6, 4)])
    def test_full_coverage(self, rows, cols):
        report = run_bist(rows, cols)
        assert report.coverage == 1.0
        assert not report.escapes

    def test_configuration_count_constant(self):
        small = run_bist(2, 2)
        large = run_bist(8, 8)
        assert small.num_configurations == large.num_configurations == 5

    def test_vector_count_linear_in_cols(self):
        a = run_bist(4, 4)
        b = run_bist(4, 8)
        assert b.num_vectors < 2.5 * a.num_vectors

    def test_beats_naive_configuration_count(self):
        report = run_bist(8, 8)
        assert report.num_configurations < report.naive_configurations

    def test_single_column_bridge_exclusion(self):
        # a row bridge with one input column is behaviourally dormant;
        # exclude bridges and coverage is total
        report = run_bist(3, 1, include_bridges=False)
        assert report.coverage == 1.0

    def test_coverage_helper(self):
        fabric = CrossbarFabric(3, 3)
        configs = bist_configurations(3, 3)
        assert coverage(fabric, configs) == 1.0
        assert coverage(fabric, []) < 1.0

    def test_verify_full_coverage_wrapper(self):
        assert verify_full_coverage(3, 4)

    def test_application_bist_detects_relevant_defects(self):
        fabric = CrossbarFabric(2, 2)
        program = ((True, False), (False, True))
        clean = DefectMap(2, 2, {})
        assert application_bist_passes(fabric, program, clean)
        # stuck-open under a programmed junction: caught
        so = DefectMap(2, 2, {(0, 0): CrosspointState.STUCK_OPEN})
        assert not application_bist_passes(fabric, program, so)
        # stuck-closed under an unprogrammed junction: caught
        sc = DefectMap(2, 2, {(0, 1): CrosspointState.STUCK_CLOSED})
        assert not application_bist_passes(fabric, program, sc)
        # stuck-closed under a *programmed* junction is harmless
        harmless = DefectMap(2, 2, {(0, 0): CrosspointState.STUCK_CLOSED})
        assert application_bist_passes(fabric, program, harmless)


class TestBisd:
    @pytest.mark.parametrize("rows,cols", [(2, 2), (3, 3), (4, 4), (4, 6)])
    def test_unique_diagnosis_of_all_crosspoint_faults(self, rows, cols):
        report = run_bisd(rows, cols)
        assert report.accuracy == 1.0

    def test_configuration_count_logarithmic(self):
        for rows, cols in [(4, 4), (8, 8), (16, 16)]:
            report = run_bisd(rows, cols) if rows <= 4 else None
            configs = diagnosis_configurations(rows, cols)
            expected = math.ceil(math.log2(rows * cols)) + 2
            assert len(configs) == expected
            if report is not None:
                assert report.num_configurations == expected

    def test_no_fault_signature_decodes_none(self):
        observed = tuple([False] * (math.ceil(math.log2(9)) + 2))
        assert diagnose(3, 3, observed) == Diagnosis("none", None, None)

    def test_diagnose_fault_end_to_end(self):
        fabric = CrossbarFabric(3, 3)
        assert diagnose_fault(fabric, CrosspointStuckOpen(1, 2)) == Diagnosis(
            "stuck_open", 1, 2)
        assert diagnose_fault(fabric, CrosspointStuckClosed(2, 0)) == Diagnosis(
            "stuck_closed", 2, 0)

    def test_all_ones_codeword_stuck_closed_detected(self):
        # Regression: SC at the all-ones codeword index passes every code
        # configuration; the closed-probe must still flag it.
        fabric = CrossbarFabric(2, 4)  # 8 resources, index 7 = 111
        fault = CrosspointStuckClosed(1, 3)
        assert diagnose_fault(fabric, fault) == Diagnosis("stuck_closed", 1, 3)

    def test_signature_shape_validation(self):
        with pytest.raises(ValueError):
            diagnose(3, 3, (True,))

    def test_both_probes_failing_rejected(self):
        bits = math.ceil(math.log2(9))
        with pytest.raises(ValueError):
            diagnose(3, 3, tuple([True, True] + [False] * bits))

    def test_signatures_are_distinct_across_faults(self):
        fabric = CrossbarFabric(3, 3)
        configs = diagnosis_configurations(3, 3)
        seen = {}
        for r in range(3):
            for c in range(3):
                for fault in (CrosspointStuckOpen(r, c), CrosspointStuckClosed(r, c)):
                    sig = signature(fabric, configs, fault)
                    assert sig not in seen, f"{fault} collides with {seen[sig]}"
                    seen[sig] = fault
