"""Tests for the Boolean expression parser."""

import pytest
from hypothesis import given, strategies as st

from repro.boolean import (
    ExpressionError,
    expression_to_cover,
    expression_to_truth_table,
    expression_variables,
    parse_expression,
)


def table_of(text, names=None):
    return expression_to_truth_table(parse_expression(text), names)


class TestParsing:
    def test_paper_notation_spaces_and_plus(self):
        t, names = table_of("x1 x2 + x3 x4")
        assert names == ["x1", "x2", "x3", "x4"]
        for m in range(16):
            expected = ((m & 1) and (m & 2)) or ((m & 4) and (m & 8))
            assert t.evaluate(m) == bool(expected)

    def test_postfix_prime_negation(self):
        t, _ = table_of("x1'")
        assert t.evaluate(0) and not t.evaluate(1)

    def test_double_prime_cancels(self):
        t, _ = table_of("x1''")
        assert not t.evaluate(0) and t.evaluate(1)

    def test_programming_operators(self):
        t, _ = table_of("~a & (b | c) ^ 1")
        for m in range(8):
            a, b, c = m & 1, (m >> 1) & 1, (m >> 2) & 1
            assert t.evaluate(m) == (not ((not a) and (b or c)))

    def test_xnor_example_from_paper(self):
        t, _ = table_of("x1 x2 + x1' x2'")
        assert sorted(t.minterms()) == [0, 3]

    def test_constants(self):
        t, names = table_of("0 + 1")
        assert names == [] and t.evaluate(0)

    def test_adjacency_with_parentheses(self):
        t, _ = table_of("x1(x2 + x3)")
        for m in range(8):
            assert t.evaluate(m) == bool((m & 1) and (m & 2 or m & 4))

    def test_natural_variable_ordering(self):
        node = parse_expression("x10 + x2 + x1")
        assert expression_variables(node) == ["x1", "x2", "x10"]

    def test_explicit_names_override(self):
        t, names = table_of("a", names=["b", "a"])
        assert names == ["b", "a"]
        assert t.evaluate(0b10) and not t.evaluate(0b01)

    def test_errors(self):
        for bad in ("", "x1 &", "(x1", "x1 @ x2", ")", "x1 x2)"):
            with pytest.raises(ExpressionError):
                parse_expression(bad)

    def test_missing_name_in_override(self):
        with pytest.raises(ExpressionError):
            table_of("a + b", names=["a"])


class TestCoverConversion:
    def test_sop_expression_to_cover_direct(self):
        cover, names = expression_to_cover(parse_expression("x1 x2' + x3"))
        assert len(cover) == 2
        assert cover.num_literal_occurrences == 3

    def test_cover_matches_table_semantics(self):
        node = parse_expression("x1 x2 + x2' x3 + x1 x3")
        cover, names = expression_to_cover(node)
        table, _ = expression_to_truth_table(node, names)
        assert cover.to_truth_table() == table

    def test_non_sop_falls_back_to_minterms(self):
        node = parse_expression("x1 ^ x2")
        cover, names = expression_to_cover(node)
        table, _ = expression_to_truth_table(node, names)
        assert cover.to_truth_table() == table

    def test_contradictory_product_skipped(self):
        cover, _ = expression_to_cover(parse_expression("x1 x1' + x2"))
        assert len(cover) == 1

    @given(st.integers(min_value=0, max_value=255))
    def test_roundtrip_via_expression_text(self, bits):
        from repro.boolean import Cover, TruthTable

        t = TruthTable.from_bits(3, bits)
        cover = Cover.from_truth_table(t)
        if not len(cover):
            return
        text = cover.to_expression()
        t2, names = table_of(text)
        # names may be a subset when some variable is unused; re-embed
        if names == [f"x{i+1}" for i in range(3)]:
            assert t2 == t
