"""Tests for the lattice composition algebra (padding rules of [3])."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.boolean import Cube, Literal, TruthTable
from repro.crossbar import Lattice
from repro.synthesis import (
    constant_lattice,
    lattice_and,
    lattice_and_many,
    lattice_or,
    lattice_or_many,
    lift_lattice,
    literal_lattice,
    pad_cols,
    pad_rows,
    product_lattice,
)

N = 3


@st.composite
def small_lattices(draw, n=N, max_dim=3):
    rows = draw(st.integers(min_value=1, max_value=max_dim))
    cols = draw(st.integers(min_value=1, max_value=max_dim))
    sites = []
    for _ in range(rows):
        row = []
        for _ in range(cols):
            kind = draw(st.integers(min_value=0, max_value=2 * n + 1))
            if kind == 2 * n:
                row.append(True)
            elif kind == 2 * n + 1:
                row.append(False)
            else:
                row.append(Literal(kind // 2, kind % 2 == 0))
        sites.append(row)
    return Lattice(n, sites)


class TestPrimitives:
    def test_constant_lattices(self):
        assert constant_lattice(2, True).to_truth_table().is_tautology()
        assert constant_lattice(2, False).to_truth_table().is_contradiction()

    def test_literal_lattice(self):
        lat = literal_lattice(3, Literal(1, False))
        assert lat.to_truth_table() == ~TruthTable.variable(3, 1)

    def test_product_lattice(self):
        cube = Cube.from_string("1-0")
        lat = product_lattice(3, cube)
        assert lat.shape == (2, 1)
        assert lat.to_truth_table() == TruthTable.from_cubes(3, [cube])

    def test_product_lattice_empty_cube(self):
        lat = product_lattice(3, Cube.universe(3))
        assert lat.to_truth_table().is_tautology()


class TestPadding:
    @given(small_lattices(), st.integers(min_value=0, max_value=3))
    @settings(max_examples=60, deadline=None)
    def test_pad_rows_preserves_function(self, lattice, extra):
        padded = pad_rows(lattice, lattice.rows + extra)
        assert padded.rows == lattice.rows + extra
        assert padded.to_truth_table() == lattice.to_truth_table()

    @given(small_lattices(), st.integers(min_value=0, max_value=3))
    @settings(max_examples=60, deadline=None)
    def test_pad_cols_preserves_function(self, lattice, extra):
        padded = pad_cols(lattice, lattice.cols + extra)
        assert padded.cols == lattice.cols + extra
        assert padded.to_truth_table() == lattice.to_truth_table()

    def test_pad_cannot_shrink(self):
        lat = constant_lattice(2, True)
        with pytest.raises(ValueError):
            pad_rows(lat, 0)
        with pytest.raises(ValueError):
            pad_cols(lat, 0)


class TestComposition:
    @given(small_lattices(), small_lattices())
    @settings(max_examples=80, deadline=None)
    def test_or_semantics(self, a, b):
        composed = lattice_or(a, b)
        assert composed.to_truth_table() == (a.to_truth_table() | b.to_truth_table())
        assert composed.cols == a.cols + b.cols + 1
        assert composed.rows == max(a.rows, b.rows)

    @given(small_lattices(), small_lattices())
    @settings(max_examples=80, deadline=None)
    def test_and_semantics(self, a, b):
        composed = lattice_and(a, b)
        assert composed.to_truth_table() == (a.to_truth_table() & b.to_truth_table())
        assert composed.rows == a.rows + b.rows + 1
        assert composed.cols == max(a.cols, b.cols)

    def test_or_requires_separator(self):
        # Without the 0-column, lateral crossings change the function: glueing
        # x1x2x3 and x4x5x6 columns directly yields exactly the Fig. 4
        # lattice, which computes two extra dog-leg products.
        a = Lattice.from_strings(6, ["x1", "x2", "x3"])
        b = Lattice.from_strings(6, ["x4", "x5", "x6"])
        glued = Lattice(6, [list(ra) + list(rb)
                            for ra, rb in zip(a.sites, b.sites)])
        proper = lattice_or(a, b)
        assert proper.to_truth_table() == (a.to_truth_table() | b.to_truth_table())
        assert glued.to_truth_table() != proper.to_truth_table()

    @given(st.lists(small_lattices(), min_size=1, max_size=3))
    @settings(max_examples=40, deadline=None)
    def test_many_fold(self, lattices):
        or_all = lattice_or_many(lattices)
        and_all = lattice_and_many(lattices)
        expect_or = lattices[0].to_truth_table()
        expect_and = lattices[0].to_truth_table()
        for lat in lattices[1:]:
            expect_or |= lat.to_truth_table()
            expect_and &= lat.to_truth_table()
        assert or_all.to_truth_table() == expect_or
        assert and_all.to_truth_table() == expect_and

    def test_many_requires_nonempty(self):
        with pytest.raises(ValueError):
            lattice_or_many([])
        with pytest.raises(ValueError):
            lattice_and_many([])

    def test_space_mismatch(self):
        with pytest.raises(ValueError):
            lattice_or(constant_lattice(2, True), constant_lattice(3, True))


class TestLift:
    @given(small_lattices(), st.integers(min_value=0, max_value=N))
    @settings(max_examples=60, deadline=None)
    def test_lift_ignores_new_variable(self, lattice, var):
        lifted = lift_lattice(lattice, var)
        assert lifted.n == lattice.n + 1
        base = lattice.to_truth_table()
        lifted_table = lifted.to_truth_table()
        for m in range(1 << lifted.n):
            low = m & ((1 << var) - 1)
            high = (m >> (var + 1)) << var
            assert lifted_table.evaluate(m) == base.evaluate(high | low)
