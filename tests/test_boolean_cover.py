"""Unit and property tests for SOP covers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.boolean import Cover, Cube, TruthTable


@st.composite
def covers(draw, n=4, max_cubes=5):
    count = draw(st.integers(min_value=0, max_value=max_cubes))
    rows = [draw(st.text(alphabet="01-", min_size=n, max_size=n)) for _ in range(count)]
    return Cover(n, [Cube.from_string(r) for r in rows])


class TestConstruction:
    def test_from_strings(self):
        cover = Cover.from_strings(["1-0", "01-"])
        assert cover.n == 3 and len(cover) == 2

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Cover(3, [Cube.from_string("1-")])

    def test_empty_is_constant_zero(self):
        assert Cover.empty(3).to_truth_table().is_contradiction()

    def test_tautology_is_constant_one(self):
        assert Cover.tautology(3).to_truth_table().is_tautology()

    def test_from_truth_table_roundtrip(self):
        t = TruthTable.from_minterms(3, [1, 4, 6])
        assert Cover.from_truth_table(t).to_truth_table() == t


class TestMetrics:
    def test_fig3_example_counts(self):
        # f = x1 x2 + x1' x2' from Section III-A: 4 literals, 2 products.
        cover = Cover.from_strings(["11", "00"])
        assert cover.num_products == 2
        assert cover.num_literal_occurrences == 4
        assert cover.num_distinct_literals == 4

    def test_distinct_literals_shared_between_cubes(self):
        cover = Cover.from_strings(["1-", "10"])
        # literals: x1 (twice, counted once) and x2'
        assert cover.num_distinct_literals == 2
        assert cover.num_literal_occurrences == 3

    def test_support(self):
        cover = Cover.from_strings(["1--", "--0"])
        assert cover.support() == [0, 2]


class TestSemantics:
    def test_evaluate_is_or_of_products(self):
        cover = Cover.from_strings(["11-", "--1"])
        for m in range(8):
            expected = ((m & 1) and (m & 2)) or (m & 4)
            assert cover.evaluate(m) == bool(expected)

    def test_covers_cube_exact(self):
        cover = Cover.from_strings(["1-", "01"])
        assert cover.covers_cube(Cube.from_string("1-"))
        assert cover.covers_cube(Cube.from_string("11"))
        assert not cover.covers_cube(Cube.from_string("--"))

    def test_covers_cube_needs_multiple_products(self):
        cover = Cover.from_strings(["1-", "0-"])
        assert cover.covers_cube(Cube.from_string("--"))

    @given(covers(), st.text(alphabet="01-", min_size=4, max_size=4))
    def test_covers_cube_matches_semantics(self, cover, pattern):
        cube = Cube.from_string(pattern)
        expected = all(cover.evaluate(m) for m in cube.minterms())
        assert cover.covers_cube(cube) == expected

    @given(covers())
    def test_tautology_check_matches_truth_table(self, cover):
        assert cover.is_tautology() == cover.to_truth_table().is_tautology()


class TestOperations:
    def test_disjunction_concatenates(self):
        a = Cover.from_strings(["1-"])
        b = Cover.from_strings(["-1"])
        both = a.disjunction(b)
        assert both.to_truth_table() == (a.to_truth_table() | b.to_truth_table())

    def test_conjunction_products(self):
        a = Cover.from_strings(["1-"])
        b = Cover.from_strings(["-1"])
        both = a.conjunction(b)
        assert both.to_truth_table() == (a.to_truth_table() & b.to_truth_table())

    @given(covers(), covers())
    def test_conjunction_semantics(self, a, b):
        assert a.conjunction(b).to_truth_table() == (
            a.to_truth_table() & b.to_truth_table()
        )

    def test_cofactor_reindexes(self):
        cover = Cover.from_strings(["11-", "0-1"])
        cof = cover.cofactor(0, True)
        assert cof.n == 2
        t = cover.to_truth_table().cofactor(0, True)
        assert cof.to_truth_table() == t

    @given(covers(), st.integers(min_value=0, max_value=3), st.booleans())
    def test_cofactor_semantics(self, cover, var, value):
        assert cover.cofactor(var, value).to_truth_table() == (
            cover.to_truth_table().cofactor(var, value)
        )

    def test_drop_contained_removes_absorbed(self):
        cover = Cover.from_strings(["1--", "11-", "110"])
        slim = cover.drop_contained()
        assert len(slim) == 1
        assert slim.equivalent(cover)

    def test_irredundant_removes_consensus_covered(self):
        # middle cube -11 is covered by the union of the other two
        cover = Cover.from_strings(["11-", "-11", "0-1"])
        slim = cover.irredundant()
        assert len(slim) == 2
        assert slim.equivalent(cover)

    @given(covers())
    @settings(max_examples=50)
    def test_irredundant_preserves_semantics(self, cover):
        slim = cover.irredundant()
        assert slim.equivalent(cover)
        # every remaining cube is needed
        for i in range(len(slim)):
            assert not slim.without_index(i).equivalent(slim)

    def test_complement_inputs(self):
        cover = Cover.from_strings(["10"])
        flipped = cover.complement_inputs()
        t = cover.to_truth_table()
        for m in range(4):
            assert flipped.evaluate(m) == t.evaluate(m ^ 0b11)

    def test_lift_inverts_cofactor_reindex(self):
        cover = Cover.from_strings(["11", "0-"])
        lifted = cover.lift(1)
        assert lifted.n == 3
        assert lifted.cofactor(1, True) .to_truth_table() == cover.to_truth_table()
        assert lifted.cofactor(1, False).to_truth_table() == cover.to_truth_table()
