"""Suite-wide wiring for the runtime lock sanitizer.

Running the tier-1 suite with ``NANOXBAR_LOCKCHECK=1`` installs
:mod:`repro.analysis.lockwatch` before any test creates a lock: every
``threading.Lock``/``RLock`` made during the run is instrumented, and at
session end any recorded violations (lock-order inversions, locks held
across a fork boundary) fail the run even though every individual test
passed.  Without the flag this file does nothing.
"""

from __future__ import annotations

import pytest

from repro.analysis import lockwatch

_watch = lockwatch.install_from_env()


def pytest_sessionfinish(session: pytest.Session, exitstatus: int) -> None:
    if _watch is None:
        return
    violations = _watch.violations()
    if violations and session.exitstatus == 0:
        session.exitstatus = 1


def pytest_terminal_summary(terminalreporter, exitstatus: int, config) -> None:
    if _watch is None:
        return
    violations = _watch.violations()
    if violations:
        terminalreporter.section("lockwatch violations")
        terminalreporter.write_line(_watch.render_report())
    else:
        terminalreporter.write_line(
            "lockwatch: no lock-order or fork-safety violations")
