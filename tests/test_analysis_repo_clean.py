"""The repo's own invariant: ``nanoxbar lint src/`` stays clean.

This is the CI gate as a test — every determinism / concurrency /
layering rule over the entire source tree, with zero unsuppressed
findings, and every suppression (if any ever appear) carrying a reason.
"""

from __future__ import annotations

import os

from repro.analysis import lint_paths

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _lint(*relative):
    return lint_paths([os.path.join(REPO_ROOT, part) for part in relative])


def test_src_tree_lints_clean():
    report = _lint("src")
    assert report.files_checked > 100
    offenders = "\n".join(f.render() for f in report.unsuppressed)
    assert report.exit_code == 0, f"unsuppressed findings:\n{offenders}"


def test_benchmarks_and_examples_lint_clean():
    report = _lint("benchmarks", "examples")
    assert report.files_checked > 0
    offenders = "\n".join(f.render() for f in report.unsuppressed)
    assert report.exit_code == 0, f"unsuppressed findings:\n{offenders}"


def test_every_suppression_carries_a_reason():
    report = _lint("src", "benchmarks", "examples")
    for finding in report.findings:
        if finding.suppressed:
            assert finding.reason, f"reasonless suppression: {finding.render()}"
