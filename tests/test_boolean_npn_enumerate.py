"""Tests for NPN classification and lattice expressiveness enumeration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.boolean import (
    TruthTable,
    apply_transform,
    count_npn_classes,
    npn_canonical,
    npn_classes,
    npn_equivalent,
    npn_semicanonical,
)
from repro.boolean.npn import NpnTransform
from repro.synthesis import (
    enumerate_lattice_functions,
    expressiveness,
    minimal_area_map,
)


def tables(n=3):
    return st.integers(min_value=0, max_value=(1 << (1 << n)) - 1).map(
        lambda bits: TruthTable.from_bits(n, bits)
    )


class TestNpn:
    def test_classic_class_counts(self):
        assert count_npn_classes(1) == 2   # constants vs. the literal
        assert count_npn_classes(2) == 4
        assert count_npn_classes(3) == 14

    def test_and_or_same_class(self):
        a = TruthTable.from_minterms(2, [3])          # x1 & x2
        o = TruthTable.from_minterms(2, [1, 2, 3])    # x1 | x2
        assert npn_equivalent(a, o)   # complement inputs + output

    def test_xor_not_equivalent_to_and(self):
        x = TruthTable.from_minterms(2, [1, 2])
        a = TruthTable.from_minterms(2, [3])
        assert not npn_equivalent(x, a)

    def test_different_arity_not_equivalent(self):
        assert not npn_equivalent(TruthTable.constant(2, True),
                                  TruthTable.constant(3, True))

    @given(tables())
    @settings(max_examples=30, deadline=None)
    def test_canonical_transform_is_witness(self, t):
        canonical, transform = npn_canonical(t)
        assert apply_transform(t, transform) == canonical

    @given(tables(2), st.permutations([0, 1]),
           st.integers(min_value=0, max_value=3), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_canonical_invariant_under_transforms(self, t, perm, neg, out):
        transformed = apply_transform(t, NpnTransform(tuple(perm), neg, out))
        assert npn_canonical(t)[0] == npn_canonical(transformed)[0]

    def test_classes_grouping(self):
        all_two_var = [TruthTable.from_bits(2, bits) for bits in range(16)]
        groups = npn_classes(all_two_var)
        assert len(groups) == 4
        assert sum(len(v) for v in groups.values()) == 16

    def test_large_n_rejected(self):
        # the pruned search is exact through n = 6; beyond that it refuses
        with pytest.raises(ValueError):
            npn_canonical(TruthTable.constant(7, True))
        with pytest.raises(ValueError):
            count_npn_classes(4)


class TestNpnSemicanonical:
    """The wide-n semi-canonical key: always a valid witness, never merges
    distinct classes, and in practice agrees across random classmates."""

    @given(tables())
    @settings(max_examples=30, deadline=None)
    def test_transform_is_witness(self, t):
        rep, transform = npn_semicanonical(t)
        assert apply_transform(t, transform) == rep

    @given(tables(2), st.permutations([0, 1]),
           st.integers(min_value=0, max_value=3), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_never_merges_classes(self, t, perm, neg, out):
        # two tables mapping to the same representative ARE NPN-equivalent
        # (the representative is itself an NPN transform of each)
        other = apply_transform(t, NpnTransform(tuple(perm), neg, out))
        rep_t, _ = npn_semicanonical(t)
        rep_o, _ = npn_semicanonical(other)
        if rep_t == rep_o:
            assert npn_equivalent(t, other)

    def test_wide_n_classmates_usually_agree(self):
        # semi-canonical means a class MAY split, but random n=7 functions
        # should near-always collapse (the engine cache relies on this for
        # its hit rate; exactness is guaranteed separately by the stored
        # g-table probe)
        import random

        rng = random.Random(99)
        agree = trials = 0
        for _ in range(12):
            t = TruthTable.from_bits(7, rng.getrandbits(1 << 7))
            rep, _ = npn_semicanonical(t)
            for _ in range(3):
                perm = list(range(7))
                rng.shuffle(perm)
                mate = apply_transform(
                    t, NpnTransform(tuple(perm), rng.getrandbits(7),
                                    bool(rng.getrandbits(1))))
                trials += 1
                agree += npn_semicanonical(mate)[0] == rep
        assert trials == 36
        assert agree >= 34  # near-perfect collapse on random functions


class TestEnumeration:
    def test_single_site_functions(self):
        functions = enumerate_lattice_functions(1, 1, 2)
        # 4 literals + 2 constants = 6 distinct functions
        assert len(functions) == 6

    def test_row_of_two_is_or_of_sites(self):
        functions = enumerate_lattice_functions(1, 2, 1)
        # over 1 variable: {0, 1, x, ~x, x|~x=1, ...} = {0,1,x,~x}
        assert len(functions) == 4

    def test_column_of_two_is_and_of_sites(self):
        functions = enumerate_lattice_functions(2, 1, 1)
        assert len(functions) == 4

    def test_2x2_realises_everything_over_two_vars(self):
        functions = enumerate_lattice_functions(2, 2, 2)
        assert len(functions) == 16

    def test_limit_guard(self):
        with pytest.raises(ValueError):
            enumerate_lattice_functions(4, 4, 3, limit=1000)

    def test_expressiveness_row_fields(self):
        row = expressiveness(2, 2, 2)
        assert row.coverage == 1.0
        assert row.npn_classes == 4
        assert row.labellings == 6 ** 4

    def test_minimal_area_map_known_entries(self):
        frontier = minimal_area_map(2, max_area=4)
        and2 = TruthTable.from_minterms(2, [3])
        or2 = TruthTable.from_minterms(2, [1, 2, 3])
        xor2 = TruthTable.from_minterms(2, [1, 2])
        lit = TruthTable.variable(2, 0)
        assert frontier[lit] == 1
        assert frontier[and2] == 2
        assert frontier[or2] == 2
        assert frontier[xor2] == 4
        # the frontier covers the entire 2-variable space by area 4
        assert len(frontier) == 16


class TestPrunedCanonicalSearch:
    """The packed-uint64 pruned search vs the blind-enumeration reference."""

    @given(st.integers(1, 4), st.data())
    @settings(max_examples=60, deadline=None)
    def test_pruned_matches_exhaustive(self, n, data):
        from repro.boolean.npn import npn_canonical_exhaustive

        bits = data.draw(st.integers(0, (1 << (1 << n)) - 1))
        t = TruthTable.from_bits(n, bits)
        pruned, witness = npn_canonical(t)
        blind, _ = npn_canonical_exhaustive(t)
        assert pruned == blind
        assert apply_transform(t, witness) == pruned

    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_n6_witness_round_trip(self, data):
        """The lifted-limit contract: n = 6 canonicalisation is exact —
        the witness reproduces the canonical form, and every transformed
        classmate lands on the same representative."""
        bits = data.draw(st.integers(0, (1 << 64) - 1))
        t = TruthTable.from_bits(6, bits)
        canonical, witness = npn_canonical(t)
        assert apply_transform(t, witness) == canonical

        perm = tuple(data.draw(st.permutations(list(range(6)))))
        neg = data.draw(st.integers(0, 63))
        out = data.draw(st.booleans())
        mate = apply_transform(t, NpnTransform(perm, neg, out))
        mate_canonical, mate_witness = npn_canonical(mate)
        assert mate_canonical == canonical
        assert apply_transform(mate, mate_witness) == mate_canonical

    def test_rejects_beyond_exact_limit(self):
        from repro.boolean.npn import MAX_EXACT_NPN_VARS

        assert MAX_EXACT_NPN_VARS == 6
        with pytest.raises(ValueError):
            npn_canonical(TruthTable.constant(MAX_EXACT_NPN_VARS + 1, False))
