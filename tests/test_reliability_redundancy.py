"""Tests for spare-line repair and TMR (repro.reliability.redundancy)."""

import random

import pytest

from repro.boolean import TruthTable
from repro.reliability import (
    CrosspointState,
    DefectMap,
    majority_voter_lattice,
    make_tmr,
    perfect_map,
    repair_with_spares,
    spare_overhead_for_success,
    tmr_reliability,
)
from repro.synthesis import fold_lattice, synthesize_lattice_dual


def xnor_replica():
    table = TruthTable.from_minterms(2, [0, 3])
    return fold_lattice(synthesize_lattice_dual(table), table), table


class TestSpareRepair:
    def test_perfect_crossbar_identity_assignment(self):
        result = repair_with_spares(perfect_map(6, 6), 4, 4)
        assert result.success
        assert result.row_assignment == (0, 1, 2, 3)
        assert result.rows_replaced == 0

    def test_defective_line_is_skipped(self):
        defect_map = DefectMap(5, 5, {(1, 3): CrosspointState.STUCK_OPEN})
        result = repair_with_spares(defect_map, 4, 4)
        assert result.success
        assert 1 not in result.row_assignment
        assert 3 not in result.col_assignment
        assert result.rows_replaced >= 1

    def test_insufficient_spares_fails(self):
        defects = {(r, 0): CrosspointState.STUCK_OPEN for r in range(4)}
        defect_map = DefectMap(4, 4, defects)
        assert not repair_with_spares(defect_map, 4, 4).success

    def test_assigned_lines_are_clean(self):
        rng = random.Random(5)
        from repro.reliability import random_defect_map

        for seed in range(20):
            defect_map = random_defect_map(10, 10, 0.02, random.Random(seed))
            result = repair_with_spares(defect_map, 6, 6)
            if not result.success:
                continue
            bad_rows = defect_map.defective_rows()
            bad_cols = defect_map.defective_cols()
            assert not (set(result.row_assignment) & bad_rows)
            assert not (set(result.col_assignment) & bad_cols)

    def test_oversized_request_raises(self):
        with pytest.raises(ValueError):
            repair_with_spares(perfect_map(2, 2), 3, 2)

    def test_spare_overhead_zero_density(self):
        rng = random.Random(0)
        assert spare_overhead_for_success(4, 0.0, 0.99, rng, trials=10) == 0

    def test_spare_overhead_low_density_small(self):
        rng = random.Random(1)
        spares = spare_overhead_for_success(4, 0.005, 0.8, rng, trials=60,
                                            max_spares=8)
        assert spares is not None and spares <= 4

    def test_spare_overhead_gives_up(self):
        rng = random.Random(2)
        assert spare_overhead_for_success(6, 0.3, 0.99, rng, trials=20,
                                          max_spares=3) is None


class TestTmr:
    def test_voter_is_majority(self):
        voter = majority_voter_lattice()
        maj = TruthTable.from_callable(3, lambda m: bin(m).count("1") >= 2)
        assert voter.implements(maj)

    def test_fault_free_tmr_matches_function(self):
        replica, table = xnor_replica()
        system = make_tmr(replica)
        for m in range(4):
            assert system.evaluate(m) == table.evaluate(m)

    def test_tmr_area_overhead(self):
        replica, _ = xnor_replica()
        system = make_tmr(replica)
        assert system.area == 3 * replica.area + system.voter.area

    def test_tmr_masks_single_replica_upset(self):
        # Force exactly one replica wrong: with a fault-free voter the
        # output must still be correct — verified statistically by running
        # at tiny upset rates where double upsets are negligible.
        replica, table = xnor_replica()
        rng = random.Random(3)
        points = tmr_reliability(replica, table, [0.002], 800, rng)
        assert points[0].tmr_correct >= points[0].simplex_correct

    def test_reliability_extremes(self):
        replica, table = xnor_replica()
        rng = random.Random(4)
        points = tmr_reliability(replica, table, [0.0], 50, rng)
        assert points[0].simplex_correct == 1.0
        assert points[0].tmr_correct == 1.0

    def test_dimension_mismatch_rejected(self):
        replica, _ = xnor_replica()
        wrong = TruthTable.constant(3, True)
        with pytest.raises(ValueError):
            tmr_reliability(replica, wrong, [0.1], 5, random.Random(0))
