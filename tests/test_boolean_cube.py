"""Unit and property tests for cubes and literals."""

import pytest
from hypothesis import given, strategies as st

from repro.boolean import Cube, Literal


class TestLiteral:
    def test_positive_literal_evaluates_variable_bit(self):
        lit = Literal(2, True)
        assert lit.evaluate(0b100)
        assert not lit.evaluate(0b011)

    def test_negative_literal_inverts(self):
        lit = Literal(0, False)
        assert lit.evaluate(0b110)
        assert not lit.evaluate(0b001)

    def test_negated_roundtrip(self):
        lit = Literal(3, True)
        assert lit.negated().negated() == lit
        assert lit.negated() == Literal(3, False)

    def test_name_with_defaults_and_custom(self):
        assert Literal(0, True).name() == "x1"
        assert Literal(1, False).name() == "x2'"
        assert Literal(1, False).name(["a", "b"]) == "b'"

    def test_rejects_negative_variable(self):
        with pytest.raises(ValueError):
            Literal(-1, True)

    def test_ordering_is_stable(self):
        lits = [Literal(2, True), Literal(0, False), Literal(0, True)]
        assert sorted(lits)[0].var == 0


class TestCubeConstruction:
    def test_from_string_parses_positional(self):
        cube = Cube.from_string("1-0")
        assert cube.n == 3
        assert cube.polarity(0) == "1"
        assert cube.polarity(1) == "-"
        assert cube.polarity(2) == "0"

    def test_from_string_rejects_garbage(self):
        with pytest.raises(ValueError):
            Cube.from_string("1x0")

    def test_from_literals(self):
        cube = Cube.from_literals(4, [Literal(0, True), Literal(3, False)])
        assert str(cube) == "1--0"

    def test_from_literals_conflict_raises(self):
        with pytest.raises(ValueError):
            Cube.from_literals(2, [Literal(0, True), Literal(0, False)])

    def test_from_minterm_has_all_literals(self):
        cube = Cube.from_minterm(3, 0b101)
        assert cube.num_literals == 3
        assert cube.evaluate(0b101)
        assert not cube.evaluate(0b100)

    def test_universe_covers_everything(self):
        cube = Cube.universe(3)
        assert all(cube.evaluate(m) for m in range(8))

    def test_overlapping_masks_rejected(self):
        with pytest.raises(ValueError):
            Cube(2, 0b01, 0b01)

    def test_mask_outside_space_rejected(self):
        with pytest.raises(ValueError):
            Cube(2, 0b100, 0)


class TestCubeSemantics:
    def test_evaluate_matches_literal_conjunction(self):
        cube = Cube.from_string("10-")
        for m in range(8):
            expected = (m & 1) and not (m & 2)
            assert cube.evaluate(m) == bool(expected)

    def test_minterms_enumeration(self):
        cube = Cube.from_string("1--")
        assert sorted(cube.minterms()) == [0b001, 0b011, 0b101, 0b111]

    def test_size_matches_minterm_count(self):
        cube = Cube.from_string("1-0-")
        assert cube.size() == len(list(cube.minterms())) == 4

    def test_contains_reflexive_and_monotone(self):
        big = Cube.from_string("1--")
        small = Cube.from_string("1-0")
        assert big.contains(small)
        assert not small.contains(big)
        assert big.contains(big)

    def test_intersection_agrees_with_minterm_sets(self):
        a = Cube.from_string("1--")
        b = Cube.from_string("-0-")
        meet = a.intersection(b)
        assert meet is not None
        assert set(meet.minterms()) == set(a.minterms()) & set(b.minterms())

    def test_disjoint_cubes_have_no_intersection(self):
        a = Cube.from_string("1--")
        b = Cube.from_string("0--")
        assert a.intersection(b) is None
        assert not a.intersects(b)


class TestCubeOperations:
    def test_merge_adjacent(self):
        a = Cube.from_string("101")
        b = Cube.from_string("100")
        merged = a.merge(b)
        assert merged is not None
        assert str(merged) == "10-"

    def test_merge_rejects_distance_two(self):
        a = Cube.from_string("101")
        b = Cube.from_string("110")
        assert a.merge(b) is None

    def test_merge_rejects_different_care_masks(self):
        a = Cube.from_string("10-")
        b = Cube.from_string("100")
        assert a.merge(b) is None

    def test_cofactor_drops_literal(self):
        cube = Cube.from_string("10-")
        assert str(cube.cofactor(0, True)) == "-0-"
        assert cube.cofactor(0, False) is None

    def test_shared_literals_same_polarity_only(self):
        a = Cube.from_string("11-")
        b = Cube.from_string("1-0")
        shared = a.shared_literals(b)
        assert shared == [Literal(0, True)]

    def test_consensus_on_single_conflict(self):
        a = Cube.from_string("11-")
        b = Cube.from_string("0-1")
        consensus = a.consensus(b)
        assert consensus is not None
        assert str(consensus) == "-11"

    def test_project_out_and_lift_are_inverse(self):
        cube = Cube.from_string("1-0-")
        projected = cube.project_out(1)
        assert projected.n == 3
        assert str(projected) == "10-"
        assert projected.lift(1) == cube

    def test_project_out_constrained_variable_raises(self):
        with pytest.raises(ValueError):
            Cube.from_string("1-0").project_out(0)

    def test_complement_literals_swaps_polarity(self):
        cube = Cube.from_string("10-")
        assert str(cube.complement_literals()) == "01-"


@st.composite
def cubes(draw, n=4):
    pattern = draw(st.text(alphabet="01-", min_size=n, max_size=n))
    return Cube.from_string(pattern)


class TestCubeProperties:
    @given(cubes(), cubes())
    def test_intersection_semantics(self, a, b):
        meet = a.intersection(b)
        expected = set(a.minterms()) & set(b.minterms())
        if meet is None:
            assert expected == set()
        else:
            assert set(meet.minterms()) == expected

    @given(cubes(), cubes())
    def test_containment_semantics(self, a, b):
        assert a.contains(b) == (set(b.minterms()) <= set(a.minterms()))

    @given(cubes())
    def test_minterm_count_matches_size(self, cube):
        assert cube.size() == len(list(cube.minterms()))

    @given(cubes(), cubes())
    def test_merge_preserves_union(self, a, b):
        merged = a.merge(b)
        if merged is not None:
            assert set(merged.minterms()) == set(a.minterms()) | set(b.minterms())

    @given(cubes(), st.integers(min_value=0, max_value=3), st.booleans())
    def test_cofactor_semantics(self, cube, var, value):
        cof = cube.cofactor(var, value)
        expected = {
            m for m in cube.minterms() if bool((m >> var) & 1) == value
        }
        if cof is None:
            assert expected == set()
        else:
            assert {m for m in cof.minterms()
                    if bool((m >> var) & 1) == value} == expected
