"""Tests for the ROBDD engine and the BooleanFunction facade."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.boolean import Bdd, BooleanFunction, Cover, TruthTable, verify_cover


def tables(n=4):
    return st.integers(min_value=0, max_value=(1 << (1 << n)) - 1).map(
        lambda bits: TruthTable.from_bits(n, bits)
    )


class TestBdd:
    def test_terminals(self):
        b = Bdd(3)
        assert b.constant(False) == Bdd.FALSE
        assert b.evaluate(Bdd.TRUE, 0b101)

    def test_var_node(self):
        b = Bdd(3)
        x1 = b.var_node(1)
        assert b.evaluate(x1, 0b010)
        assert not b.evaluate(x1, 0b101)
        assert b.evaluate(b.var_node(1, positive=False), 0b101)

    def test_reduction_rules_dedupe(self):
        b = Bdd(2)
        a1 = b.node(0, Bdd.FALSE, Bdd.TRUE)
        a2 = b.node(0, Bdd.FALSE, Bdd.TRUE)
        assert a1 == a2
        assert b.node(1, a1, a1) == a1

    @given(tables())
    @settings(max_examples=50)
    def test_truth_table_roundtrip(self, t):
        b = Bdd(4)
        node = b.from_truth_table(t)
        assert b.to_truth_table(node) == t

    @given(tables(), tables())
    @settings(max_examples=40)
    def test_apply_ops_match_table_ops(self, t1, t2):
        b = Bdd(4)
        n1, n2 = b.from_truth_table(t1), b.from_truth_table(t2)
        assert b.to_truth_table(b.conj(n1, n2)) == (t1 & t2)
        assert b.to_truth_table(b.disj(n1, n2)) == (t1 | t2)
        assert b.to_truth_table(b.xor(n1, n2)) == (t1 ^ t2)
        assert b.to_truth_table(b.negate(n1)) == ~t1

    @given(tables())
    @settings(max_examples=50)
    def test_sat_count(self, t):
        b = Bdd(4)
        assert b.sat_count(b.from_truth_table(t)) == t.count_ones()

    @given(tables())
    @settings(max_examples=50)
    def test_any_sat(self, t):
        b = Bdd(4)
        node = b.from_truth_table(t)
        model = b.any_sat(node)
        if t.is_contradiction():
            assert model is None
        else:
            assert t.evaluate(model)

    @given(tables(), st.integers(min_value=0, max_value=3), st.booleans())
    @settings(max_examples=40)
    def test_restrict(self, t, var, value):
        b = Bdd(4)
        node = b.from_truth_table(t)
        restricted = b.restrict(node, var, value)
        assert b.to_truth_table(restricted) == t.restrict(var, value)

    @given(tables())
    @settings(max_examples=40)
    def test_prime_paths_form_disjoint_cover(self, t):
        b = Bdd(4)
        node = b.from_truth_table(t)
        cubes = list(b.iter_prime_paths(node))
        cover = Cover(4, cubes)
        assert cover.to_truth_table() == t
        for i, a in enumerate(cubes):
            for c in cubes[i + 1:]:
                assert not a.intersects(c)

    def test_from_cover_matches(self):
        cover = Cover.from_strings(["1-0", "01-"])
        b = Bdd(3)
        assert b.to_truth_table(b.from_cover(cover)) == cover.to_truth_table()

    def test_support(self):
        b = Bdd(4)
        node = b.from_truth_table(TruthTable.variable(4, 2))
        assert b.support(node) == [2]

    def test_ite(self):
        b = Bdd(3)
        c, t_, e = b.var_node(0), b.var_node(1), b.var_node(2)
        ite = b.ite(c, t_, e)
        for m in range(8):
            expected = bool(m & 2) if (m & 1) else bool(m & 4)
            assert b.evaluate(ite, m) == expected


class TestBooleanFunction:
    def test_from_expression_and_metrics(self):
        f = BooleanFunction.from_expression("x1 x2 + x1' x2'")
        m = f.sop_metrics()
        assert m == {
            "n": 2, "products": 2, "literal_occurrences": 4,
            "distinct_literals": 4, "dual_products": 2,
        }

    def test_minimized_cover_verified(self):
        f = BooleanFunction.from_minterms(4, [1, 3, 7, 11, 15])
        assert verify_cover(f.minimized_cover, f.on)

    def test_dont_cares_used(self):
        f = BooleanFunction.from_minterms(2, [3], dc_minterms=[1])
        assert f.minimized_cover.num_products == 1
        assert f.minimized_cover[0].num_literals == 1

    def test_cofactor_names(self):
        f = BooleanFunction.from_expression("a b + c", names=["a", "b", "c"])
        g = f.cofactor(0, True)
        assert g.names == ["b", "c"]
        assert g.n == 2

    def test_complement_twice_identity_on_specified(self):
        f = BooleanFunction.from_minterms(3, [1, 2, 5])
        assert f.complement().complement().on == f.on

    def test_dual_matches_table_dual(self):
        f = BooleanFunction.from_minterms(3, [1, 2, 5])
        assert f.dual().on == f.on.dual()

    def test_equality_and_hash(self):
        f = BooleanFunction.from_minterms(3, [1, 2])
        g = BooleanFunction.from_minterms(3, [1, 2])
        assert f == g and hash(f) == hash(g)

    def test_callable_interface(self):
        f = BooleanFunction.from_expression("x1 x2")
        assert f(0b11) and not f(0b01)

    def test_pla_roundtrip(self):
        f = BooleanFunction.from_minterms(3, [1, 4, 6])
        g = BooleanFunction.from_pla_text(f.to_pla_text())
        assert g.on == f.on

    def test_name_length_validation(self):
        with pytest.raises(ValueError):
            BooleanFunction(TruthTable.constant(2, True), names=["a"])

    def test_to_expression_parses_back(self):
        f = BooleanFunction.from_minterms(3, [0, 3, 5, 6])
        g = BooleanFunction.from_expression(f.to_expression(), names=f.names)
        assert g.on == f.on
