"""Portfolio preemption: raced verdicts must equal serial verdicts.

``run_portfolio_raced`` kills pending strategies only when the verified
incumbent has hit the area lower bound AND no pending strategy could
displace it on the tie-goes-earlier rule.  That proof obligation means
the raced winner (strategy name, lattice, area) is *identical* to the
serial one — asserted here over randomized tables plus a hand-picked
lower-bound hit where preemption provably fires.
"""

from __future__ import annotations

import random

import pytest

from repro.boolean.truthtable import TruthTable
from repro.engine import (
    DEFAULT_STRATEGIES,
    PortfolioConfig,
    area_lower_bound,
    run_portfolio,
    run_portfolio_raced,
)


class TestAreaLowerBound:
    def test_support_sized(self):
        assert area_lower_bound(TruthTable.from_minterms(3, [7])) == 3
        # x0 alone: one labelled site suffices and is required
        assert area_lower_bound(TruthTable.from_bits(1, 0b10)) == 1

    def test_constants_floor_at_one(self):
        assert area_lower_bound(TruthTable.constant(2, True)) == 1
        assert area_lower_bound(TruthTable.constant(2, False)) == 1


class TestRacedMatchesSerial:
    def test_randomized_verdicts_identical(self):
        rng = random.Random(21)
        config = PortfolioConfig(preempt=True)
        for _ in range(8):
            n = rng.randint(1, 3)
            table = TruthTable.from_bits(n, rng.getrandbits(1 << n))
            serial = run_portfolio(table, config=config)
            raced = run_portfolio_raced(table, config=config)
            assert raced.strategy == serial.strategy
            assert raced.area == serial.area
            assert raced.lattice == serial.lattice

    def test_lower_bound_hit_preempts_later_strategies(self):
        # f = x0 over 3 vars: dual wins immediately at area == LB == 1,
        # so every later strategy is provably a non-winner
        table = TruthTable.from_bits(3, 0b10101010)
        assert area_lower_bound(table) == 1
        raced = run_portfolio_raced(table, config=PortfolioConfig())
        assert raced.strategy == "dual"
        assert raced.area == 1
        statuses = {o.strategy: o.status for o in raced.outcomes}
        assert statuses["dual"] == "ok"
        later = [s for s in DEFAULT_STRATEGIES if s != "dual"]
        assert later and all(statuses[s] == "preempted" for s in later)
        # and the verdict still matches serial exactly
        serial = run_portfolio(table, config=PortfolioConfig())
        assert (raced.strategy, raced.area) == (serial.strategy, serial.area)
        assert raced.lattice == serial.lattice

    def test_constant_short_circuits_without_processes(self):
        raced = run_portfolio_raced(TruthTable.constant(2, False))
        serial = run_portfolio(TruthTable.constant(2, False))
        assert raced.lattice == serial.lattice
        assert raced.strategy == serial.strategy

    def test_single_strategy_falls_back_to_serial(self):
        table = TruthTable.from_minterms(2, [1, 2])
        raced = run_portfolio_raced(table, strategies=("dual",))
        serial = run_portfolio(table, strategies=("dual",))
        assert raced.lattice == serial.lattice
        assert all(o.status != "preempted" for o in raced.outcomes)

    def test_validation_mirrors_serial(self):
        with pytest.raises(ValueError):
            run_portfolio_raced(TruthTable.from_bits(1, 0b10),
                                strategies=("nonsense",))
        # empty portfolio: same RuntimeError as the serial path
        with pytest.raises(RuntimeError):
            run_portfolio_raced(TruthTable.from_bits(1, 0b10),
                                strategies=())


class TestPreemptCacheCompatibility:
    def test_fingerprint_ignores_preempt_flag(self):
        # raced and serial verdicts are identical by contract, so cache
        # entries written under either mode must be interchangeable
        on = PortfolioConfig(preempt=True).fingerprint()
        off = PortfolioConfig(preempt=False).fingerprint()
        assert on == off
        assert PortfolioConfig(dreducible_max_vars=3).fingerprint() != off
