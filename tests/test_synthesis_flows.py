"""Tests for the synthesis flows: two-terminal, dual lattice, folding,
P-circuits, D-reducible and SAT-optimal."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.boolean import BooleanFunction, TruthTable, minimize
from repro.synthesis import (
    SynthesisError,
    TwoTerminalError,
    best_pcircuit,
    candidate_shapes,
    dual_synthesis_report,
    fold_lattice,
    lattice_from_covers,
    lattice_size_formula,
    optimize_lattice,
    pcircuit_decompose,
    pick_shared_literal,
    recompose_table,
    simplify_sites,
    synthesize_diode,
    synthesize_dreducible,
    synthesize_fet,
    synthesize_lattice_dual,
    synthesize_lattice_optimal,
    synthesize_pcircuit,
    two_terminal_report,
)


def tables(n=4):
    return st.integers(min_value=0, max_value=(1 << (1 << n)) - 1).map(
        lambda bits: TruthTable.from_bits(n, bits)
    )


def nonconstant_tables(n=4):
    return st.integers(min_value=1, max_value=(1 << (1 << n)) - 2).map(
        lambda bits: TruthTable.from_bits(n, bits)
    )


class TestTwoTerminal:
    def test_report_xnor_matches_paper(self):
        f = BooleanFunction.from_expression("x1 x2 + x1' x2'", label="xnor")
        report = two_terminal_report(f)
        assert report.diode_shape == (2, 5)
        assert report.fet_shape == (4, 4)
        assert report.diode_formula == report.diode_shape
        assert report.fet_formula == report.fet_shape

    def test_constant_raises(self):
        f = BooleanFunction.from_truth_table(TruthTable.constant(2, True))
        with pytest.raises(TwoTerminalError):
            two_terminal_report(f)
        with pytest.raises(TwoTerminalError):
            synthesize_diode(TruthTable.constant(2, False))
        with pytest.raises(TwoTerminalError):
            synthesize_fet(TruthTable.constant(2, True))

    @given(nonconstant_tables())
    @settings(max_examples=30, deadline=None)
    def test_arrays_implement_function(self, t):
        assert synthesize_diode(t).implements(t)
        assert synthesize_fet(t).implements(t)

    @given(nonconstant_tables())
    @settings(max_examples=30, deadline=None)
    def test_formula_matches_construction(self, t):
        f = BooleanFunction.from_truth_table(t)
        report = two_terminal_report(f)
        assert report.diode_formula == report.diode_shape
        # The FET column formula is exact; the row formula matches whenever
        # the dual's literals are a subset of f's (checked conditionally).
        assert report.fet_formula[1] == report.fet_shape[1]
        cover = minimize(t)
        dual_cover = minimize(t.dual())
        f_lits = set(cover.distinct_literals())
        d_lits = set(dual_cover.distinct_literals())
        if d_lits <= f_lits:
            assert report.fet_formula[0] == report.fet_shape[0]


class TestDualLattice:
    def test_fig5_formula_on_xnor(self):
        f = BooleanFunction.from_expression("x1 x2 + x1' x2'")
        report = dual_synthesis_report(f)
        assert report.formula_shape == (2, 2)
        assert report.lattice.shape == (2, 2)

    def test_fig4_function_formula(self):
        f = BooleanFunction.from_expression(
            "x1 x2 x3 + x1 x2 x5 x6 + x2 x3 x4 x5 + x4 x5 x6"
        )
        report = dual_synthesis_report(f)
        assert report.products == 4
        assert report.formula_shape == (report.dual_products, 4)
        assert report.lattice.implements(f.on)

    def test_constants(self):
        zero = synthesize_lattice_dual(TruthTable.constant(3, False))
        one = synthesize_lattice_dual(TruthTable.constant(3, True))
        assert zero.to_truth_table().is_contradiction()
        assert one.to_truth_table().is_tautology()

    def test_shared_literal_error_message(self):
        from repro.boolean import Cube

        with pytest.raises(SynthesisError):
            pick_shared_literal(Cube.from_string("1-"), Cube.from_string("-0"))

    @given(tables())
    @settings(max_examples=60, deadline=None)
    def test_lattice_implements_function(self, t):
        lattice = synthesize_lattice_dual(t, verify=False)
        assert lattice.implements(t)

    @given(nonconstant_tables())
    @settings(max_examples=30, deadline=None)
    def test_formula_shape(self, t):
        cover = minimize(t)
        dual_cover = minimize(t.dual())
        lattice = lattice_from_covers(cover, dual_cover)
        assert lattice.shape == lattice_size_formula(cover, dual_cover)


class TestFolding:
    @given(nonconstant_tables(3))
    @settings(max_examples=30, deadline=None)
    def test_folding_preserves_and_shrinks(self, t):
        lattice = synthesize_lattice_dual(t)
        report = optimize_lattice(lattice, t)
        assert report.folded_area <= report.original_area
        assert report.lattice.implements(t)

    def test_fold_keeps_minimum_one_row_col(self):
        t = TruthTable.variable(2, 0)
        lattice = synthesize_lattice_dual(t)
        folded = fold_lattice(lattice, t)
        assert folded.rows >= 1 and folded.cols >= 1

    @given(nonconstant_tables(3))
    @settings(max_examples=20, deadline=None)
    def test_simplify_sites_preserves(self, t):
        lattice = synthesize_lattice_dual(t)
        simplified = simplify_sites(lattice, t)
        assert simplified.implements(t)


class TestPCircuit:
    def test_decomposition_blocks_disjoint(self):
        t = TruthTable.from_minterms(3, [1, 3, 6, 7])
        dec = pcircuit_decompose(t, 0)
        assert (dec.f_eq_on & dec.intersection).is_contradiction()
        assert (dec.f_neq_on & dec.intersection).is_contradiction()

    @given(tables(3), st.integers(min_value=0, max_value=2), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_recomposition_identity_lower_choice(self, t, var, polarity):
        dec = pcircuit_decompose(t, var, polarity)
        rebuilt = recompose_table(dec, dec.f_eq_on, dec.f_neq_on, dec.intersection)
        assert rebuilt == t

    @given(tables(3), st.integers(min_value=0, max_value=2), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_recomposition_identity_upper_choice(self, t, var, polarity):
        dec = pcircuit_decompose(t, var, polarity)
        rebuilt = recompose_table(
            dec,
            dec.f_eq_on | dec.f_eq_dc,
            dec.f_neq_on | dec.f_neq_dc,
            dec.intersection,
        )
        assert rebuilt == t

    @given(tables(4), st.integers(min_value=0, max_value=3), st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_pcircuit_lattice_implements(self, t, var, polarity):
        result = synthesize_pcircuit(t, var, polarity, verify=False)
        assert result.lattice.implements(t)

    @given(tables(3))
    @settings(max_examples=15, deadline=None)
    def test_best_pcircuit_implements(self, t):
        result = best_pcircuit(t)
        assert result.lattice.implements(t)

    def test_var_range_check(self):
        with pytest.raises(ValueError):
            pcircuit_decompose(TruthTable.constant(2, True), 5)


class TestDReducible:
    def test_non_reducible_returns_none(self):
        assert synthesize_dreducible(TruthTable.constant(3, True)) is None

    def test_known_reducible(self):
        # on-set inside the even-parity affine space
        t = TruthTable.from_minterms(4, [0b0000, 0b0011, 0b0101, 0b1111])
        result = synthesize_dreducible(t)
        assert result is not None
        assert result.space.dim < 4
        assert result.lattice.implements(t)

    @given(st.sets(st.integers(min_value=0, max_value=15), min_size=1, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_reducible_lattices_implement(self, minterms):
        t = TruthTable.from_minterms(4, minterms)
        result = synthesize_dreducible(t, verify=False)
        if result is None:
            return
        assert result.lattice.implements(t)
        assert result.dimension_drop >= 1


class TestOptimal:
    def test_candidate_shapes_sorted_by_area(self):
        shapes = candidate_shapes(7)
        areas = [r * c for r, c in shapes]
        assert areas == sorted(areas)
        assert all(a < 7 for a in areas)

    def test_constants(self):
        res = synthesize_lattice_optimal(TruthTable.constant(2, False))
        assert res.area == 1 and res.proved_optimal

    def test_single_literal(self):
        res = synthesize_lattice_optimal(TruthTable.variable(2, 1))
        assert res.area == 1

    def test_xnor_optimal_2x2(self):
        f = BooleanFunction.from_expression("x1 x2 + x1' x2'")
        res = synthesize_lattice_optimal(f.on)
        assert res.area == 4 and res.proved_optimal

    def test_and2_needs_two_sites(self):
        f = BooleanFunction.from_expression("x1 x2")
        res = synthesize_lattice_optimal(f.on)
        assert res.area == 2
        assert res.shape == (2, 1)

    def test_or2_single_row(self):
        f = BooleanFunction.from_expression("x1 + x2")
        res = synthesize_lattice_optimal(f.on)
        assert res.area == 2
        assert res.shape == (1, 2)

    @given(nonconstant_tables(3))
    @settings(max_examples=8, deadline=None)
    def test_optimal_implements_and_beats_heuristic(self, t):
        res = synthesize_lattice_optimal(t, conflict_budget=50_000)
        assert res.lattice.implements(t)
        heuristic = fold_lattice(synthesize_lattice_dual(t), t)
        assert res.area <= heuristic.area
