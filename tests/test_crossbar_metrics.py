"""Tests for the area/delay/power models."""

import pytest

from repro.boolean import BooleanFunction, TruthTable
from repro.crossbar import (
    TechnologyParameters,
    compare_styles,
    diode_metrics,
    fet_metrics,
    lattice_metrics,
    Lattice,
)
from repro.synthesis import synthesize_diode, synthesize_fet


def xnor():
    return BooleanFunction.from_expression("x1 x2 + x1' x2'")


class TestDiodeMetrics:
    def test_delay_counts_worst_chain(self):
        f = xnor()
        array = synthesize_diode(f.on)
        tech = TechnologyParameters(wire_delay_per_line=0.0)
        metrics = diode_metrics(array, tech)
        # worst product has 2 literals; +1 for the OR junction
        assert metrics.delay == pytest.approx(3.0)

    def test_static_power_scales_with_rows(self):
        f = xnor()
        array = synthesize_diode(f.on)
        metrics = diode_metrics(array)
        bigger = BooleanFunction.from_expression("x1 x2 + x1' x2' + x1 x3")
        metrics_big = diode_metrics(synthesize_diode(bigger.on))
        assert metrics_big.power > metrics.power

    def test_area_matches_array(self):
        array = synthesize_diode(xnor().on)
        assert diode_metrics(array).area == array.area


class TestFetMetrics:
    def test_no_static_power(self):
        f = xnor()
        fet = synthesize_fet(f.on)
        diode = synthesize_diode(f.on)
        assert fet_metrics(fet).power < diode_metrics(diode).power

    def test_delay_counts_series_stack(self):
        f = xnor()
        fet = synthesize_fet(f.on)
        tech = TechnologyParameters(wire_delay_per_line=0.0)
        assert fet_metrics(fet, tech).delay == pytest.approx(2.0)


class TestLatticeMetrics:
    def test_delay_is_worst_best_path(self):
        # straight 2x1 column: every on-input conducts through 2 sites
        lattice = Lattice.from_strings(2, ["x1", "x2"])
        tech = TechnologyParameters(wire_delay_per_line=0.0)
        metrics = lattice_metrics(lattice, tech=tech)
        assert metrics.delay == pytest.approx(2.0)

    def test_non_conducting_onset_rejected(self):
        lattice = Lattice.from_strings(1, ["x1"])
        wrong = TruthTable.constant(1, True)
        with pytest.raises(ValueError):
            lattice_metrics(lattice, wrong)

    def test_dogleg_increases_delay(self):
        # Fig. 4 lattice: the x2x3x4x5 product conducts through a 4-site
        # dog-leg, longer than the straight columns.
        lattice = Lattice.from_strings(6, ["x1 x4", "x2 x5", "x3 x6"])
        tech = TechnologyParameters(wire_delay_per_line=0.0)
        metrics = lattice_metrics(lattice, tech=tech)
        assert metrics.delay == pytest.approx(4.0)


class TestCompareStyles:
    def test_three_rows_one_per_style(self):
        metrics = compare_styles(xnor().on)
        assert [m.style for m in metrics] == ["diode", "fet", "lattice"]

    def test_lattice_wins_area_on_xnor(self):
        metrics = {m.style: m for m in compare_styles(xnor().on)}
        assert metrics["lattice"].area < metrics["diode"].area
        assert metrics["lattice"].area < metrics["fet"].area
