"""Suite for the batched variation-campaign subsystem (repro.varsim).

Covers the tentpole contracts:

* ensemble and selection kernels bit-identical to their scalar
  :mod:`repro.reliability.variation` references (ties included — the
  stable-sort determinism fix);
* seeded campaigns bit-reproducible serial vs pooled and across store
  hits/misses;
* the constant-0 guard and the CLI entry point.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.boolean.cube import Literal
from repro.crossbar.lattice import Lattice
from repro.engine.store import JsonStore
from repro.eval.cli import main as cli_main
from repro.reliability.variation import (
    VariationMap,
    oblivious_selection,
    variation_aware_selection,
)
from repro.varsim import (
    VariationBatch,
    VariationCampaignSpec,
    lattice_content_hash,
    lognormal_variation_batch,
    oblivious_selection_batch,
    run_variation_campaign,
    smallest_k_indices,
    variation_aware_selection_batch,
)

XNOR2 = Lattice(2, [[Literal(0, True), Literal(1, True)],
                    [Literal(1, False), Literal(0, False)]])


# ----------------------------------------------------------------------
# Ensembles
# ----------------------------------------------------------------------
def test_lognormal_batch_is_one_deterministic_draw():
    a = lognormal_variation_batch(5, 3, 4, 0.5, np.random.default_rng(9))
    b = lognormal_variation_batch(5, 3, 4, 0.5, np.random.default_rng(9))
    assert np.array_equal(a.resistance, b.resistance)
    assert (a.trials, a.rows, a.cols) == (5, 3, 4)
    assert (a.resistance > 0).all()


def test_lognormal_batch_sigma_zero_is_nominal():
    batch = lognormal_variation_batch(3, 2, 2, 0.0,
                                      np.random.default_rng(0), nominal=2.5)
    assert np.allclose(batch.resistance, 2.5)


def test_lognormal_batch_rejects_bad_parameters():
    gen = np.random.default_rng(0)
    with pytest.raises(ValueError):
        lognormal_variation_batch(2, 2, 2, -0.1, gen)
    with pytest.raises(ValueError):
        lognormal_variation_batch(2, 2, 2, 0.1, gen, nominal=0.0)
    with pytest.raises(ValueError):
        lognormal_variation_batch(-1, 2, 2, 0.1, gen)


def test_variation_batch_submaps_gather():
    resistance = np.arange(1, 2 * 3 * 3 + 1, dtype=float).reshape(2, 3, 3)
    batch = VariationBatch(resistance)
    rows = np.array([[0, 2], [1, 2]])
    cols = np.array([[1, 2], [0, 1]])
    sub = batch.submaps(rows, cols)
    assert sub.shape == (2, 2, 2)
    assert np.array_equal(sub[0], resistance[0][np.ix_([0, 2], [1, 2])])
    assert np.array_equal(sub[1], resistance[1][np.ix_([1, 2], [0, 1])])
    assert np.array_equal(batch.to_variation_map(1).resistance,
                          resistance[1])


# ----------------------------------------------------------------------
# Selection kernels vs the scalar references
# ----------------------------------------------------------------------
@settings(max_examples=80, deadline=None)
@given(st.integers(0, 2 ** 32 - 1), st.integers(1, 8), st.integers(1, 8),
       st.data())
def test_aware_selection_batch_matches_scalar(seed, rows, cols, data):
    app_rows = data.draw(st.integers(1, rows))
    app_cols = data.draw(st.integers(1, cols))
    gen = np.random.default_rng(seed)
    resistance = gen.lognormal(0.0, 0.6, size=(4, rows, cols))
    got_rows, got_cols = variation_aware_selection_batch(
        resistance, app_rows, app_cols)
    for t in range(4):
        want_rows, want_cols = variation_aware_selection(
            VariationMap(resistance[t]), app_rows, app_cols)
        assert got_rows[t].tolist() == want_rows
        assert got_cols[t].tolist() == want_cols


def test_aware_selection_ties_pick_lowest_indices():
    """The stable-sort determinism fix, scalar and batched.

    With every budget identical, any non-stable selection could return an
    arbitrary platform-dependent subset; the contract is the lowest
    physical line indices.
    """
    flat = VariationMap(np.ones((6, 6)))
    rows, cols = variation_aware_selection(flat, 3, 2)
    assert rows == [0, 1, 2]
    assert cols == [0, 1]
    batch_rows, batch_cols = variation_aware_selection_batch(
        np.ones((5, 6, 6)), 3, 2)
    assert np.array_equal(batch_rows, np.tile([0, 1, 2], (5, 1)))
    assert np.array_equal(batch_cols, np.tile([0, 1], (5, 1)))


def test_aware_selection_partial_ties_on_threshold():
    # budgets: rows 0 and 3 share the smallest value, rows 2 and 4 share
    # the threshold value -> stable pick is index order within each tie.
    budgets = np.array([[1.0, 5.0, 2.0, 1.0, 2.0, 9.0]])
    assert smallest_k_indices(budgets, 3).tolist() == [[0, 2, 3]]
    assert smallest_k_indices(budgets, 4).tolist() == [[0, 2, 3, 4]]
    resistance = np.broadcast_to(budgets[0][None, :, None] / 6.0,
                                 (1, 6, 6)).copy()
    got_rows, _ = variation_aware_selection_batch(resistance, 3, 6)
    want_rows, _ = variation_aware_selection(
        VariationMap(resistance[0]), 3, 6)
    assert got_rows[0].tolist() == want_rows == [0, 2, 3]


def test_smallest_k_indices_edges():
    budgets = np.array([[3.0, 1.0, 2.0]])
    assert smallest_k_indices(budgets, 0).shape == (1, 0)
    assert smallest_k_indices(budgets, 3).tolist() == [[0, 1, 2]]
    with pytest.raises(ValueError):
        smallest_k_indices(budgets, 4)


def test_oblivious_selection_batch_is_uniform_subset():
    gen = np.random.default_rng(5)
    picks = oblivious_selection_batch(200, 8, 3, gen)
    assert picks.shape == (200, 3)
    # sorted, unique per trial, full range covered across trials
    assert (np.diff(picks, axis=1) > 0).all()
    assert set(np.unique(picks)) == set(range(8))
    # scalar reference has the same support
    rng = random.Random(5)
    rows, _ = oblivious_selection(VariationMap(np.ones((8, 8))), 3, 3, rng)
    assert len(rows) == 3 and rows == sorted(set(rows))


# ----------------------------------------------------------------------
# Campaigns
# ----------------------------------------------------------------------
def _spec(**overrides) -> VariationCampaignSpec:
    defaults = dict(lattice=XNOR2, sigmas=(0.2, 0.6), crossbar_rows=10,
                    crossbar_cols=10, trials=60, batch_size=25, seed=3)
    defaults.update(overrides)
    return VariationCampaignSpec(**defaults)


def test_campaign_serial_vs_pooled_bit_identical():
    serial = run_variation_campaign(_spec(), processes=1)
    pooled = run_variation_campaign(_spec(), processes=2)
    assert [e.aware_delays for e in serial.estimates] == \
           [e.aware_delays for e in pooled.estimates]
    assert [e.oblivious_delays for e in serial.estimates] == \
           [e.oblivious_delays for e in pooled.estimates]
    for est in serial.estimates:
        assert est.trials == 60
        assert all(d > 0 for d in est.aware_delays)


def test_campaign_independent_of_sigma_order():
    forward = run_variation_campaign(_spec(sigmas=(0.2, 0.6)))
    backward = run_variation_campaign(_spec(sigmas=(0.6, 0.2)))
    assert forward.estimate(0.6).aware_delays == \
        backward.estimate(0.6).aware_delays
    assert forward.estimate(0.2).oblivious_delays == \
        backward.estimate(0.2).oblivious_delays


def test_campaign_store_round_trip(tmp_path):
    path = str(tmp_path / "campaigns.sqlite")
    cold = run_variation_campaign(_spec(), store=path)
    warm = run_variation_campaign(_spec(), store=path)
    assert cold.cache_hits == 0 and cold.trials_sampled == 120
    assert warm.cache_hits == 2 and warm.trials_sampled == 0
    assert [e.aware_delays for e in cold.estimates] == \
           [e.aware_delays for e in warm.estimates]
    assert all(e.cache_hit for e in warm.estimates)


def test_campaign_store_corruption_reads_as_miss():
    store = JsonStore(":memory:")
    spec = _spec(sigmas=(0.4,))
    first = run_variation_campaign(spec, store=store)
    key = spec.points()[0].key()
    store.put(key, {"aware": [1.0], "oblivious": "garbage"})
    again = run_variation_campaign(spec, store=store)
    assert again.cache_hits == 0
    assert first.estimates[0].aware_delays == \
        again.estimates[0].aware_delays
    store.close()


def test_campaign_aware_not_worse_and_monotone_gain():
    result = run_variation_campaign(_spec(sigmas=(0.1, 0.8), trials=120,
                                          batch_size=60))
    rows = result.rows()
    for row in rows:
        assert row["aware_mean"] <= row["oblivious_mean"] * 1.02
    assert rows[1]["mean_gain"] > rows[0]["mean_gain"]
    assert "aware vs oblivious" in result.render()


def test_campaign_rejects_bad_specs():
    with pytest.raises(ValueError):
        _spec(sigmas=())
    with pytest.raises(ValueError):
        _spec(crossbar_rows=1)
    with pytest.raises(ValueError):
        _spec(trials=0)
    with pytest.raises(ValueError):
        _spec(nominal=0.0)
    with pytest.raises(ValueError, match="constant-0"):
        run_variation_campaign(_spec(lattice=Lattice(1, [[False]]),
                                     crossbar_rows=4, crossbar_cols=4))


def test_lattice_content_hash_tracks_content_not_identity():
    twin = Lattice(2, [[Literal(0, True), Literal(1, True)],
                       [Literal(1, False), Literal(0, False)]])
    assert lattice_content_hash(XNOR2) == lattice_content_hash(twin)
    other = XNOR2.with_site(0, 0, True)
    assert lattice_content_hash(XNOR2) != lattice_content_hash(other)


def test_cli_varsweep_smoke(capsys):
    code = cli_main(["varsweep", "--bench", "xnor2", "--sigmas", "0.3",
                     "--crossbar-rows", "6", "--crossbar-cols", "6",
                     "--trials", "20", "--batch-size", "10", "--no-cache"])
    out = capsys.readouterr().out
    assert code == 0
    assert "varsim campaign" in out


def test_cli_varsweep_unknown_bench(capsys):
    code = cli_main(["varsweep", "--bench", "no-such-bench", "--no-cache"])
    assert code == 2
    assert "error" in capsys.readouterr().err
