"""BatchEngine, portfolio, pool, and the `nanoxbar batch` CLI."""

from __future__ import annotations

import pytest

from repro.boolean.truthtable import TruthTable
from repro.engine import (
    BatchEngine,
    FaultToleranceSpec,
    PortfolioConfig,
    SynthesisJob,
    chunk_size,
    known_strategies,
    map_sharded,
    run_portfolio,
)
from repro.eval.benchsuite import suite
from repro.eval.cli import main as cli_main

FAST = ("dual", "dreducible")  # cheap deterministic portfolio for tests


def _semantics(outcomes):
    """Strategy outcomes minus the reporting-only wall-clock field."""
    return [(o.strategy, o.status, o.area, o.shape, o.detail)
            for o in outcomes]


def _jobs(max_vars=4, strategies=FAST, fault_tolerance=None):
    return [
        SynthesisJob.from_function(b.function, b.name, strategies,
                                   fault_tolerance)
        for b in suite(max_vars=max_vars)
    ]


# ----------------------------------------------------------------------
# Portfolio
# ----------------------------------------------------------------------
class TestPortfolio:
    def test_known_strategies(self):
        assert set(known_strategies()) == {
            "dual", "dreducible", "pcircuit", "optimal"}

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown strategies"):
            run_portfolio(TruthTable.from_bits(2, 0b0110), ("quantum",))

    def test_winner_is_minimum_area(self):
        table = TruthTable.from_bits(3, 0b10010110)  # xor3
        result = run_portfolio(table, ("dual", "optimal"))
        areas = [o.area for o in result.outcomes if o.ok]
        assert result.area == min(areas)
        assert result.lattice.implements(table)

    def test_tie_goes_to_earlier_strategy(self):
        table = TruthTable.from_bits(2, 0b1001)  # xnor2: dual is already 2x2
        result = run_portfolio(table, ("dual", "optimal"))
        assert result.strategy == "dual"

    def test_constant_function_short_circuits(self):
        result = run_portfolio(TruthTable.constant(3, True))
        assert result.strategy == "constant"
        assert result.lattice.implements(TruthTable.constant(3, True))

    def test_not_applicable_recorded(self):
        # maj3's on-set affine hull is the full space: no D-reduction.
        table = TruthTable.from_bits(3, 0b11101000)
        result = run_portfolio(table, ("dual", "dreducible"))
        by_name = {o.strategy: o for o in result.outcomes}
        assert by_name["dreducible"].status == "not-applicable"

    def test_effort_gates_are_deterministic_skips(self):
        table = TruthTable.from_bits(5, 0x96696996)
        config = PortfolioConfig(optimal_max_vars=4)
        result = run_portfolio(table, ("dual", "optimal"), config)
        by_name = {o.strategy: o for o in result.outcomes}
        assert by_name["optimal"].status == "skipped"
        assert "optimal_max_vars" in by_name["optimal"].detail


# ----------------------------------------------------------------------
# Pool
# ----------------------------------------------------------------------
class TestPool:
    def test_serial_path(self):
        assert map_sharded(lambda x: x * x, [1, 2, 3], processes=1) == [1, 4, 9]

    def test_pooled_preserves_order(self):
        items = list(range(20))
        assert map_sharded(_square, items, processes=2) == [x * x for x in items]

    def test_chunk_size(self):
        assert chunk_size(0, 4) == 1
        assert chunk_size(10, 1) == 1
        assert chunk_size(16, 4) == 2
        assert chunk_size(3, 4) == 1


def _square(x: int) -> int:  # module-level: must pickle into workers
    return x * x


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
class TestBatchEngine:
    def test_results_verified_and_labelled(self):
        jobs = _jobs(max_vars=3)
        with BatchEngine() as engine:
            results = engine.run(jobs)
        assert [r.label for r in results] == [j.label for j in jobs]
        for job, result in zip(jobs, results):
            assert result.lattice.implements(job.table)
            assert result.strategy
            assert result.outcomes

    def test_serial_and_pooled_bit_identical(self):
        jobs = _jobs(max_vars=4)
        with BatchEngine(processes=1) as engine:
            serial = engine.run(jobs)
        with BatchEngine(processes=2) as engine:
            pooled = engine.run(jobs)
        for a, b in zip(serial, pooled):
            assert a.lattice == b.lattice
            assert a.strategy == b.strategy
            assert _semantics(a.outcomes) == _semantics(b.outcomes)

    def test_warm_cache_hits_and_same_answers(self, tmp_path):
        path = str(tmp_path / "cache.sqlite")
        jobs = _jobs(max_vars=4)
        with BatchEngine(cache_path=path) as engine:
            cold = engine.run(jobs)
            assert engine.stats.cache_hits == 0
        with BatchEngine(cache_path=path) as engine:
            warm = engine.run(jobs)
            assert engine.stats.cache_hits == len(jobs)
            assert engine.stats.hit_rate == 1.0
            assert engine.stats.races_run == 0
        for a, b in zip(cold, warm):
            assert a.lattice == b.lattice
            assert a.strategy == b.strategy
            assert not a.cache_hit and b.cache_hit

    def test_in_run_dedup_races_once_per_class(self):
        # xor3 and fa_sum are the same function; maj3 and fa_carry are
        # NPN-equivalent: 4 jobs but only 2 races.
        chosen = [b for b in suite(max_vars=3)
                  if b.name in ("xor3", "fa_sum", "maj3", "fa_carry")]
        jobs = [SynthesisJob.from_function(b.function, b.name, FAST)
                for b in chosen]
        with BatchEngine() as engine:
            results = engine.run(jobs)
            assert engine.stats.races_run == 2
            assert engine.stats.deduped == 2
        for job, result in zip(jobs, results):
            assert result.lattice.implements(job.table)

    def test_config_changes_do_not_reuse_stale_entries(self, tmp_path):
        path = str(tmp_path / "cache.sqlite")
        jobs = _jobs(max_vars=3)
        with BatchEngine(cache_path=path) as engine:
            engine.run(jobs)
        other = PortfolioConfig(optimal_conflict_budget=1)
        with BatchEngine(cache_path=path, config=other) as engine:
            engine.run(jobs)
            assert engine.stats.cache_hits == 0

    def test_fault_tolerance_post_processing(self):
        spec = FaultToleranceSpec(defect_density=0.05, redundancy="tmr",
                                  seed=11)
        jobs = _jobs(max_vars=3, fault_tolerance=spec)
        with BatchEngine() as engine:
            results = engine.run(jobs)
        for result in results:
            ft = result.fault_tolerance
            assert ft is not None
            assert ft.mapping_trials >= 1
            assert ft.tmr_area > 3 * result.area

    def test_fault_tolerance_deterministic(self):
        spec = FaultToleranceSpec(defect_density=0.1, seed=5)
        jobs = _jobs(max_vars=3, fault_tolerance=spec)
        with BatchEngine() as engine:
            first = engine.run(jobs)
        with BatchEngine(processes=2) as engine:
            second = engine.run(jobs)
        assert [r.fault_tolerance for r in first] == \
               [r.fault_tolerance for r in second]

    def test_complement_pair_in_one_batch(self):
        """AND2 and NAND2 share an NPN canonical key but need opposite
        polarity slots — regression for the polarity-collision crash."""
        and2 = TruthTable.from_bits(2, 0b1000)
        nand2 = TruthTable.from_bits(2, 0b0111)
        jobs = [SynthesisJob.from_function(and2, "and2", FAST),
                SynthesisJob.from_function(nand2, "nand2", FAST)]
        with BatchEngine() as engine:
            results = engine.run(jobs)
            assert engine.stats.races_run == 2  # distinct polarity slots
        assert results[0].lattice.implements(and2)
        assert results[1].lattice.implements(nand2)

    def test_complement_pair_across_warm_cache(self, tmp_path):
        path = str(tmp_path / "cache.sqlite")
        and2 = TruthTable.from_bits(2, 0b1000)
        nand2 = TruthTable.from_bits(2, 0b0111)
        with BatchEngine(cache_path=path) as engine:
            engine.run([SynthesisJob.from_function(and2, "and2", FAST)])
        with BatchEngine(cache_path=path) as engine:
            [result] = engine.run(
                [SynthesisJob.from_function(nand2, "nand2", FAST)])
            assert engine.stats.cache_hits == 0  # other polarity: a miss
        assert result.lattice.implements(nand2)

    def test_corrupted_cache_self_heals(self, tmp_path):
        """Corruption costs time, never correctness: a tampered entry is
        re-raced and overwritten, not fatal to the batch."""
        import sqlite3

        path = str(tmp_path / "cache.sqlite")
        jobs = _jobs(max_vars=3)
        with BatchEngine(cache_path=path) as engine:
            good = engine.run(jobs)
        conn = sqlite3.connect(path)
        # Sabotage every row two ways: one unparseable, the rest a valid
        # lattice text computing the wrong function (all-constant-1 site).
        conn.execute("UPDATE results SET lattice = 'garbage tokens !!'"
                     " WHERE rowid = 1")
        conn.execute("UPDATE results SET lattice = '1' WHERE rowid > 1")
        conn.commit()
        conn.close()
        with BatchEngine(cache_path=path) as engine:
            healed = engine.run(jobs)
            # Stats agree with the per-result story: nothing counts as a
            # hit, and every re-race (phase-2 or phase-4) is accounted.
            assert engine.stats.cache_hits == 0
            assert engine.stats.races_run > 0
        for a, b in zip(good, healed):
            assert a.lattice == b.lattice
            assert a.strategy == b.strategy
            assert not b.cache_hit
        # And the store now holds good entries again.
        with BatchEngine(cache_path=path) as engine:
            rerun = engine.run(jobs)
            assert engine.stats.cache_hits == len(jobs)
            assert engine.stats.races_run == 0
        for a, b in zip(good, rerun):
            assert a.lattice == b.lattice

    def test_worker_errors_propagate(self):
        # An all-gated portfolio produces no lattice; the pool must
        # surface the RuntimeError, not mask it behind a serial retry.
        table = TruthTable.from_bits(5, 0x96696996)
        job = SynthesisJob.from_function(table, "gated", ("optimal",))
        for processes in (1, 2):
            with BatchEngine(processes=processes) as engine:
                with pytest.raises(RuntimeError,
                                   match="no strategy produced a lattice"):
                    engine.run([job])

    def test_report_renders(self):
        with BatchEngine() as engine:
            engine.run(_jobs(max_vars=2))
            text = engine.report()
        assert "hit_rate" in text and "throughput" in text


# ----------------------------------------------------------------------
# Jobs
# ----------------------------------------------------------------------
class TestJobs:
    def test_validation(self):
        with pytest.raises(ValueError):
            SynthesisJob("bad", 0, 0)
        with pytest.raises(ValueError):
            SynthesisJob("bad", 2, 1 << 20)
        with pytest.raises(ValueError):
            SynthesisJob("bad", 2, 0, strategies=())
        with pytest.raises(ValueError):
            FaultToleranceSpec(defect_density=1.5)
        with pytest.raises(ValueError):
            FaultToleranceSpec(redundancy="quadruple")

    def test_table_round_trip(self):
        table = TruthTable.from_bits(3, 0b10010110)
        job = SynthesisJob.from_function(table, "xor3")
        assert job.table == table
        assert job.label == "xor3"


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_batch_runs(self, capsys):
        code = cli_main(["batch", "--no-cache", "--max-vars", "3",
                         "--no-optimal"])
        assert code == 0
        out = capsys.readouterr().out
        assert "xor3" in out
        assert "hit_rate" in out

    def test_batch_warm_cache_via_file(self, tmp_path, capsys):
        cache = str(tmp_path / "cli-cache.sqlite")
        assert cli_main(["batch", "--cache", cache, "--max-vars", "3",
                         "--no-optimal"]) == 0
        capsys.readouterr()
        assert cli_main(["batch", "--cache", cache, "--max-vars", "3",
                         "--no-optimal"]) == 0
        out = capsys.readouterr().out
        assert "hit_rate=100.0%" in out

    def test_batch_with_fault_tolerance(self, capsys):
        code = cli_main(["batch", "--no-cache", "--max-vars", "3",
                         "--no-optimal", "--defect-density", "0.05",
                         "--redundancy", "tmr"])
        assert code == 0
        out = capsys.readouterr().out
        assert "tmr_area=" in out

    def test_batch_empty_selection_fails(self, capsys):
        code = cli_main(["batch", "--no-cache", "--tags", "no-such-tag"])
        assert code == 2
        assert "no benchmarks" in capsys.readouterr().err

    def test_unknown_experiment_exit_code(self, capsys):
        code = cli_main(["run", "nope"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err

    def test_unknown_benchmark_exit_code(self, capsys):
        code = cli_main(["bench", "nope"])
        assert code == 2
        assert "no benchmark named" in capsys.readouterr().err


class TestSixVariableJobs:
    """The lifted NPN limit end-to-end: n = 6 jobs get exact class keys."""

    def test_n6_classmates_share_one_race(self, tmp_path):
        import random

        from repro.boolean.npn import NpnTransform, apply_transform

        rng = random.Random(2026)
        base = TruthTable.from_bits(6, rng.getrandbits(64))
        mates = [base] + [
            apply_transform(base, NpnTransform(
                tuple(rng.sample(range(6), 6)), rng.getrandbits(6), False))
            for _ in range(3)
        ]
        jobs = [SynthesisJob(n=6, bits=m.bits, label=f"m{i}",
                             strategies=("dual",))
                for i, m in enumerate(mates)]
        with BatchEngine(cache_path=str(tmp_path / "n6.sqlite")) as engine:
            results = engine.run(jobs)
            # one NPN class, same polarity slot -> one race, three dedups
            assert engine.stats.races_run == 1
            assert engine.stats.deduped == 3
            for job, result in zip(jobs, results):
                assert result.lattice.implements(
                    TruthTable.from_bits(6, job.bits))
        # warm re-open: pure cache hits rewritten through the witnesses
        with BatchEngine(cache_path=str(tmp_path / "n6.sqlite")) as engine:
            again = engine.run(jobs)
            assert engine.stats.cache_hits == len(jobs)
            assert [r.lattice for r in again] == [r.lattice for r in results]
