"""Cross-backend kernel conformance against a committed golden file.

The flood and delay kernels promise *bit-identical* outputs whatever
executes them — single-word packed, multi-word packed, the scipy label
pass, or the optional numba backend (``NANOXBAR_BACKEND=numba``).  This
suite pins that promise to ``tests/data/core_conformance_golden.json``:
sha256 digests of the raw output bytes on deterministic, arithmetically
synthesized workloads (no RNG, so the inputs are identical on every
platform and numpy version).

CI runs the same file under the numpy job and the numba job; both must
match the one golden, which is what makes the backends provably
bit-identical to each other without ever installing both in one job.

Regenerate (only after an intentional kernel-semantics change) with::

    PYTHONPATH=src python tests/test_core_conformance.py --write
"""

from __future__ import annotations

import hashlib
import json
import pathlib

import numpy as np

import pytest

from repro.xbareval import (
    best_path_delay_batch,
    left_right_blocked_8_batch,
    top_bottom_connected_batch,
    using_numba,
)

GOLDEN = pathlib.Path(__file__).parent / "data" / "core_conformance_golden.json"

#: (batch, rows, cols) regimes: scalar-sized, the 64-row single-word
#: boundary, the first multi-word row count, and a genuinely tall grid.
CASES = ((16, 5, 4), (8, 63, 6), (8, 64, 6), (8, 65, 6), (4, 128, 9))


def _grids(batch: int, rows: int, cols: int) -> np.ndarray:
    """Deterministic boolean grids — pure integer arithmetic, no RNG."""
    b, r, c = np.meshgrid(np.arange(batch), np.arange(rows),
                          np.arange(cols), indexing="ij")
    return ((3 * b + 5 * r + 7 * c + r * c) % 11) < 6


def _resistance(batch: int, rows: int, cols: int) -> np.ndarray:
    b, r, c = np.meshgrid(np.arange(batch), np.arange(rows),
                          np.arange(cols), indexing="ij")
    return 1.0 + (2 * b + 3 * r + 5 * c) % 13


def _digest(array: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(array).tobytes()).hexdigest()


def _case_record(batch: int, rows: int, cols: int) -> dict:
    grids = _grids(batch, rows, cols)
    return {
        "batch": batch, "rows": rows, "cols": cols,
        "top_bottom": _digest(top_bottom_connected_batch(grids)),
        "left_right_blocked": _digest(left_right_blocked_8_batch(grids)),
        "delay": _digest(best_path_delay_batch(
            grids, _resistance(batch, rows, cols))),
    }


def test_golden_file_is_in_sync_with_cases():
    golden = json.loads(GOLDEN.read_text())
    assert [(c["batch"], c["rows"], c["cols"]) for c in golden["cases"]] \
        == list(CASES)


@pytest.mark.parametrize("batch,rows,cols", CASES)
def test_kernel_outputs_match_golden(batch, rows, cols):
    golden = json.loads(GOLDEN.read_text())
    want = next(c for c in golden["cases"]
                if (c["batch"], c["rows"], c["cols"]) == (batch, rows, cols))
    got = _case_record(batch, rows, cols)
    # one comparison per kernel so a mismatch names the guilty kernel
    assert got["top_bottom"] == want["top_bottom"]
    assert got["left_right_blocked"] == want["left_right_blocked"]
    assert got["delay"] == want["delay"]


def test_backend_identity_is_reported():
    """Smoke doc: the active backend is queryable (CI logs rely on it)."""
    assert using_numba() in (True, False)


def _write_golden() -> None:
    GOLDEN.parent.mkdir(exist_ok=True)
    payload = {
        "comment": "sha256 of raw kernel output bytes; shared by the "
                   "numpy and numba CI jobs to prove bit-identity",
        "cases": [_case_record(*case) for case in CASES],
    }
    GOLDEN.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {GOLDEN}")


if __name__ == "__main__":
    import sys

    if "--write" in sys.argv:
        _write_golden()
    else:
        print(__doc__)
