"""Integration tests: full pipelines across packages.

These exercise the paths a user of the library actually walks: synthesize,
program a physical fabric, fabricate defects, self-map, and verify the
mapped array still computes the function — plus smoke tests over the
experiment registry.
"""

import random
from typing import ClassVar

import pytest

from repro.boolean import BooleanFunction, TruthTable
from repro.crossbar import Lattice
from repro.eval import all_experiments, by_name, get_experiment
from repro.reliability import (
    CrossbarFabric,
    STRATEGIES,
    as_program,
    make_tmr,
    mapped_program,
    random_defect_map,
    repair_with_spares,
)
from repro.synthesis import (
    fold_lattice,
    synthesize_diode,
    synthesize_lattice_dual,
    synthesize_lattice_optimal,
    synthesize_pcircuit,
)


def diode_program(function: BooleanFunction):
    """Program matrix of the diode plane (literal columns only)."""
    diode = synthesize_diode(function.on)
    program = as_program([
        [diode.connections[r][c] for c in range(len(diode.literals))]
        for r in range(diode.num_rows)
    ])
    return diode, program


class TestSynthesisToMappedOperation:
    """function -> diode program -> defective chip -> BISM -> operation."""

    @pytest.mark.parametrize("strategy", sorted(STRATEGIES))
    def test_mapped_array_computes_the_function(self, strategy):
        f = BooleanFunction.from_expression("x1 x2 + x1 x3 + x2 x3",
                                            label="fa_carry")
        diode, program = diode_program(f)
        rng = random.Random(7)
        defect_map = random_defect_map(12, 12, 0.06, rng)
        result = STRATEGIES[strategy](program, defect_map, rng,
                                      max_retries=200)
        if not result.success:
            pytest.skip("unlucky defect draw (validity is tested elsewhere)")
        # Operate the mapped array through the behavioural fault simulator:
        # for every input assignment, the wired-AND rows of the mapped
        # program (under the real defect map) must reproduce the product
        # values, hence OR to the function value.
        fabric = CrossbarFabric(12, 12)
        full = mapped_program(program, result.mapping, 12, 12)
        for assignment in range(1 << f.n):
            vector = [True] * 12
            for j, lit in enumerate(diode.literals):
                vector[result.mapping.col_map[j]] = lit.evaluate(assignment)
            outputs = fabric.evaluate(full, vector, defect_map=defect_map)
            value = any(outputs[r] for r in result.mapping.row_map)
            assert value == f.evaluate(assignment), (strategy, assignment)

    def test_spare_repair_then_operation(self):
        f = BooleanFunction.from_expression("x1 x2' + x3")
        diode, program = diode_program(f)
        rng = random.Random(11)
        defect_map = random_defect_map(10, 10, 0.01, rng)
        repair = repair_with_spares(defect_map, len(program), len(program[0]))
        if not repair.success:
            pytest.skip("unlucky defect draw")
        fabric = CrossbarFabric(10, 10)
        from repro.reliability import Mapping

        mapping = Mapping(repair.row_assignment, repair.col_assignment)
        full = mapped_program(program, mapping, 10, 10)
        for assignment in range(1 << f.n):
            vector = [True] * 10
            for j, lit in enumerate(diode.literals):
                vector[mapping.col_map[j]] = lit.evaluate(assignment)
            outputs = fabric.evaluate(full, vector, defect_map=defect_map)
            assert any(outputs[r] for r in mapping.row_map) == f.evaluate(assignment)


class TestLatticePipelines:
    def test_optimal_feeds_tmr(self):
        f = by_name("mux2").function
        optimal = synthesize_lattice_optimal(f.on)
        system = make_tmr(optimal.lattice)
        for m in range(1 << f.n):
            assert system.evaluate(m) == f.evaluate(m)

    def test_pcircuit_result_folds_and_still_implements(self):
        f = by_name("thr4_2").function
        pc = synthesize_pcircuit(f.on, 1)
        folded = fold_lattice(pc.lattice, f.on)
        assert folded.implements(f.on)
        assert folded.area <= pc.lattice.area

    def test_every_suite_lattice_verifies(self):
        from repro.eval import suite

        for bench in suite(exclude=["large"], max_vars=5):
            lattice = synthesize_lattice_dual(bench.function.on, verify=False)
            assert lattice.implements(bench.function.on), bench.name

    def test_lattice_render_roundtrip_through_from_strings(self):
        f = by_name("xnor2").function
        lattice = synthesize_lattice_dual(f.on)
        tokens = [
            " ".join(
                "1" if s is True else "0" if s is False else s.name()
                for s in row
            )
            for row in lattice.sites
        ]
        rebuilt = Lattice.from_strings(lattice.n, tokens)
        assert rebuilt == lattice


class TestExperimentRegistrySmoke:
    CHEAP: ClassVar[list[str]] = ["fig1", "fig3", "fig4", "optimal", "bist", "bisd", "bism",
             "fig6", "recovery", "variation", "yield", "arch", "tmr"]

    def test_registry_lists_every_paper_artefact(self):
        ids = {e.experiment_id for e in all_experiments()}
        assert len(ids) >= 16

    @pytest.mark.parametrize("experiment_id", CHEAP)
    def test_fast_run_produces_rows(self, experiment_id):
        result = get_experiment(experiment_id).run(True)
        assert result.rows
        assert result.columns
        rendered = result.render()
        assert experiment_id in rendered.split("]")[0]

    def test_rows_expose_declared_columns(self):
        for experiment_id in ("fig3", "bist", "bisd"):
            result = get_experiment(experiment_id).run(True)
            for row in result.rows:
                for column in result.columns:
                    assert column in row


class TestEdgeCases:
    def test_zero_variable_functions(self):
        one = TruthTable.constant(0, True)
        zero = TruthTable.constant(0, False)
        assert synthesize_lattice_dual(one).to_truth_table() == one
        assert synthesize_lattice_dual(zero).to_truth_table() == zero

    def test_single_variable_lattices(self):
        t = TruthTable.variable(1, 0)
        lattice = synthesize_lattice_dual(t)
        assert lattice.area == 1
        assert lattice.implements(t)

    def test_optimal_on_constant(self):
        result = synthesize_lattice_optimal(TruthTable.constant(3, True))
        assert result.area == 1 and result.proved_optimal
