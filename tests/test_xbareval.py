"""Property suite for the batched evaluation core (repro.xbareval).

Every kernel is asserted bit-exact against its scalar reference on
hypothesis-generated inputs:

* :func:`top_bottom_connected_batch` vs the union-find
  :func:`repro.crossbar.paths.top_bottom_connected`;
* :func:`left_right_blocked_8_batch` vs
  :func:`repro.crossbar.paths.left_right_blocked_8`, plus the
  top-bottom/left-right percolation-duality invariant;
* :func:`lattice_truthtable` / :func:`evaluate_assignments` vs the scalar
  ``Lattice.to_truth_table_scalar`` / ``Lattice.evaluate`` loop,
  including the stuck-site overlay path;
* the placement-validity kernels vs
  :func:`repro.reliability.lattice_mapping.placement_valid`;
* :func:`evaluate_labellings` vs building each lattice and evaluating it.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.boolean.cube import Literal
from repro.crossbar.lattice import Lattice
from repro.crossbar.paths import (
    left_right_blocked_8,
    top_bottom_connected,
)
from repro.reliability.defects import (
    CODE_TO_STATE,
    DefectMap,
)
from repro.reliability.lattice_mapping import placement_valid
from repro.xbareval import (
    conduction_tensor,
    defect_map_states,
    evaluate_assignments,
    evaluate_labellings,
    implements_table,
    lattice_site_codes,
    lattice_truthtable,
    left_right_blocked_8_batch,
    percolation_duality_holds_batch,
    placement_valid_batch,
    placement_valid_grid,
    top_bottom_connected_batch,
)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def grid_batches(draw):
    batch = draw(st.integers(1, 6))
    rows = draw(st.integers(1, 6))
    cols = draw(st.integers(1, 6))
    bits = draw(st.lists(st.booleans(), min_size=batch * rows * cols,
                         max_size=batch * rows * cols))
    return np.array(bits, dtype=bool).reshape(batch, rows, cols)


@st.composite
def lattices(draw, max_vars: int = 4, max_side: int = 4):
    n = draw(st.integers(1, max_vars))
    rows = draw(st.integers(1, max_side))
    cols = draw(st.integers(1, max_side))
    site = st.one_of(
        st.just(True),
        st.just(False),
        st.builds(Literal, st.integers(0, n - 1), st.booleans()),
    )
    sites = draw(st.lists(st.lists(site, min_size=cols, max_size=cols),
                          min_size=rows, max_size=rows))
    return Lattice(n, sites)


@st.composite
def fabrics(draw, max_side: int = 6):
    rows = draw(st.integers(1, max_side))
    cols = draw(st.integers(1, max_side))
    states = draw(st.lists(st.integers(0, 2), min_size=rows * cols,
                           max_size=rows * cols))
    return np.array(states, dtype=np.uint8).reshape(rows, cols)


def _defect_map_from_states(states: np.ndarray) -> DefectMap:
    rows, cols = states.shape
    defects = {
        (int(r), int(c)): CODE_TO_STATE[int(states[r, c])]
        for r, c in zip(*np.nonzero(states))
    }
    return DefectMap(rows, cols, defects)


def _target_from_codes(codes: np.ndarray) -> Lattice:
    # code 0 -> constant-0, 1 -> constant-1, 2 -> a literal site
    lut = {0: False, 1: True, 2: Literal(0, True)}
    return Lattice(1, [[lut[int(x)] for x in row] for row in codes])


# ----------------------------------------------------------------------
# Connectivity kernels vs the scalar union-find
# ----------------------------------------------------------------------
@settings(max_examples=120, deadline=None)
@given(grid_batches())
def test_top_bottom_connected_batch_matches_scalar(grids):
    got = top_bottom_connected_batch(grids)
    want = [top_bottom_connected(g.tolist()) for g in grids]
    assert got.tolist() == want


@settings(max_examples=120, deadline=None)
@given(grid_batches())
def test_left_right_blocked_8_batch_matches_scalar(grids):
    got = left_right_blocked_8_batch(grids)
    want = [left_right_blocked_8(g.tolist()) for g in grids]
    assert got.tolist() == want


@settings(max_examples=60, deadline=None)
@given(grid_batches())
def test_all_kernel_variants_agree(grids):
    """Label-pass, packed-bitset and unpacked floods are interchangeable
    (whichever the dispatch picks, the others must match it)."""
    from repro.xbareval import connectivity as conn

    tb = [top_bottom_connected(g.tolist()) for g in grids]
    lr = [left_right_blocked_8(g.tolist()) for g in grids]
    assert conn._top_bottom_connected_packed(grids).tolist() == tb
    assert conn._top_bottom_connected_unpacked(grids).tolist() == tb
    assert conn._left_right_blocked_8_packed(grids).tolist() == lr
    assert conn._left_right_blocked_8_unpacked(grids).tolist() == lr
    if conn._ndimage is not None:
        assert conn._top_bottom_connected_label(grids).tolist() == tb
        assert conn._left_right_blocked_8_label(grids).tolist() == lr


@settings(max_examples=120, deadline=None)
@given(grid_batches())
def test_percolation_duality_invariant(grids):
    """Top-bottom ON disconnection <=> an 8-connected OFF left-right path."""
    assert percolation_duality_holds_batch(grids).all()


def test_degenerate_shapes():
    assert top_bottom_connected_batch(
        np.zeros((3, 0, 4), dtype=bool)).tolist() == [False] * 3
    assert top_bottom_connected_batch(
        np.zeros((2, 4, 0), dtype=bool)).tolist() == [False] * 2
    assert left_right_blocked_8_batch(
        np.zeros((3, 0, 4), dtype=bool)).tolist() == [True] * 3
    with pytest.raises(ValueError):
        top_bottom_connected_batch(np.zeros((4, 4), dtype=bool))


def test_serpentine_worst_case():
    """A maximally bent path still floods to the bottom."""
    rows, cols = 7, 7
    grid = np.zeros((rows, cols), dtype=bool)
    col = 0
    for r in range(rows):
        if r % 2 == 0:
            grid[r, :] = True
        else:
            grid[r, col] = True
            col = cols - 1 - col
    assert top_bottom_connected_batch(grid[None])[0]
    assert top_bottom_connected(grid.tolist())
    # cutting the last connector disconnects both implementations
    cut = grid.copy()
    cut[rows - 2, :] = False
    assert not top_bottom_connected_batch(cut[None])[0]
    assert not top_bottom_connected(cut.tolist())


# ----------------------------------------------------------------------
# Multi-word packed layout (rows > 64)
# ----------------------------------------------------------------------
#: The heights the multi-word property suite pins: both sides of the
#: single-word boundary plus genuinely tall fabrics (2, 4 words).
TALL_ROW_REGIMES = (63, 64, 65, 128, 200)


@st.composite
def tall_grid_batches(draw):
    rows = draw(st.sampled_from(TALL_ROW_REGIMES))
    batch = draw(st.integers(1, 3))
    cols = draw(st.integers(1, 4))
    seed = draw(st.integers(0, 2 ** 32 - 1))
    density = draw(st.floats(0.3, 0.8))
    rng = np.random.default_rng(seed)
    return rng.random((batch, rows, cols)) < density


@settings(max_examples=40, deadline=None)
@given(tall_grid_batches())
def test_multiword_pack_unpack_round_trip(grids):
    from repro.xbareval import connectivity as conn

    rows = grids.shape[1]
    packed = conn._pack_rows_multiword(grids)
    assert packed.dtype == np.uint64
    assert packed.shape == (grids.shape[0], -(-rows // 64), grids.shape[2])
    assert np.array_equal(conn._unpack_rows_multiword(packed, rows), grids)
    # the valid-row masks cover exactly the packable bits
    full = conn._full_mask_multiword(rows)
    assert np.array_equal(packed & full[None, :, None], packed)
    ones = conn._pack_rows_multiword(np.ones_like(grids))
    assert np.array_equal(ones, np.broadcast_to(full[None, :, None],
                                                ones.shape))


@settings(max_examples=30, deadline=None)
@given(tall_grid_batches())
def test_multiword_floods_match_unpacked_reference(grids):
    """The tentpole equivalence: multi-word Kogge-Stone floods agree with
    the boolean-tensor reference at every pinned tall-row regime."""
    from repro.xbareval import connectivity as conn

    tb_ref = conn._top_bottom_connected_unpacked(grids)
    lr_ref = conn._left_right_blocked_8_unpacked(grids)
    assert np.array_equal(
        conn._top_bottom_connected_packed_multiword(grids), tb_ref)
    assert np.array_equal(
        conn._left_right_blocked_8_packed_multiword(grids), lr_ref)
    # the public dispatch agrees too, whichever kernel it picks
    assert np.array_equal(top_bottom_connected_batch(grids), tb_ref)
    assert np.array_equal(left_right_blocked_8_batch(grids), lr_ref)
    assert percolation_duality_holds_batch(grids).all()


@settings(max_examples=25, deadline=None)
@given(grid_batches())
def test_multiword_kernels_degenerate_to_single_word(grids):
    """rows <= 64 runs the multi-word layout with one word per column;
    the verdicts must match the single-word fast path bit for bit."""
    from repro.xbareval import connectivity as conn

    assert np.array_equal(
        conn._top_bottom_connected_packed_multiword(grids),
        conn._top_bottom_connected_packed(grids))
    assert np.array_equal(
        conn._left_right_blocked_8_packed_multiword(grids),
        conn._left_right_blocked_8_packed(grids))


def test_multiword_cross_word_carry_paths():
    """A single one-cell-wide path crossing the 64-row word boundary —
    the exact pattern a broken carry shift would sever."""
    from repro.xbareval import connectivity as conn

    for rows in (65, 128, 200):
        grid = np.zeros((1, rows, 3), dtype=bool)
        grid[0, :, 1] = True
        assert conn._top_bottom_connected_packed_multiword(grid)[0]
        assert not conn._left_right_blocked_8_packed_multiword(grid)[0]
        # cut exactly at the word boundary: bit 63 -> 64
        cut = grid.copy()
        cut[0, 64, 1] = False
        assert not conn._top_bottom_connected_packed_multiword(cut)[0]
        assert conn._left_right_blocked_8_packed_multiword(cut)[0]


def test_tall_grids_stay_packed_in_dispatch(monkeypatch):
    """Without scipy the dispatch must pick the multi-word packed kernel
    for tall grids, not the slow unpacked fallback."""
    from repro.xbareval import backend as be
    from repro.xbareval import connectivity as conn

    # pin the numpy path: a live numba backend would (correctly) answer
    # before the multi-word kernel this test instruments
    monkeypatch.setenv(be.BACKEND_ENV, "numpy")
    be.reset_backend_cache()
    calls = []
    real = conn._top_bottom_connected_packed_multiword
    monkeypatch.setattr(conn, "_ndimage", None)
    monkeypatch.setattr(conn, "_top_bottom_connected_packed_multiword",
                        lambda grids: calls.append(1) or real(grids))
    rng = np.random.default_rng(5)
    grids = rng.random((2, 100, 4)) < 0.6
    got = top_bottom_connected_batch(grids)
    assert calls, "tall grid took a non-packed path"
    assert np.array_equal(got, conn._top_bottom_connected_unpacked(grids))


def test_scipy_label_failure_degrades_once(monkeypatch):
    """A scipy ABI failure mid-call falls back to the numpy kernels for
    the rest of the process instead of raising mid-campaign."""
    from repro.xbareval import connectivity as conn

    if conn._ndimage is None:
        pytest.skip("scipy not installed")

    # pin auto dispatch: a live numba backend would answer before the
    # broken label pass this test plants
    from repro.xbareval import backend as be

    monkeypatch.setenv(be.BACKEND_ENV, "auto")
    be.reset_backend_cache()

    class _BrokenNdimage:
        @staticmethod
        def label(*args, **kwargs):
            raise RuntimeError("simulated ABI break")

    monkeypatch.setattr(conn, "_ndimage", _BrokenNdimage)
    monkeypatch.setattr(conn, "_label_healthy", True)
    rng = np.random.default_rng(9)
    grids = rng.random((3, 5, 5)) < 0.5
    want = conn._top_bottom_connected_unpacked(grids)
    assert np.array_equal(top_bottom_connected_batch(grids), want)
    assert conn._label_healthy is False  # flag flipped, logged once
    # later batches skip the broken accelerator entirely
    assert np.array_equal(left_right_blocked_8_batch(grids),
                          conn._left_right_blocked_8_unpacked(grids))


def test_backend_env_selection(monkeypatch):
    """NANOXBAR_BACKEND=numpy pins the packed path; unknown values and a
    missing numba degrade to auto with one logged event, never an error."""
    from repro.xbareval import backend as be
    from repro.xbareval import connectivity as conn

    rng = np.random.default_rng(11)
    grids = rng.random((2, 6, 6)) < 0.5
    want = conn._top_bottom_connected_unpacked(grids).tolist()

    monkeypatch.setenv(be.BACKEND_ENV, "numpy")
    be.reset_backend_cache()
    assert be.requested_backend() == "numpy"
    assert be.force_numpy() and not be.using_numba()
    assert top_bottom_connected_batch(grids).tolist() == want

    monkeypatch.setenv(be.BACKEND_ENV, "no-such-backend")
    be.reset_backend_cache()
    assert be.requested_backend() == "auto"
    assert top_bottom_connected_batch(grids).tolist() == want

    monkeypatch.setenv(be.BACKEND_ENV, "numba")
    be.reset_backend_cache()
    # with numba installed this exercises the JIT kernels; without it the
    # fallback must be silent and bit-identical
    assert top_bottom_connected_batch(grids).tolist() == want
    assert left_right_blocked_8_batch(grids).tolist() == \
        conn._left_right_blocked_8_unpacked(grids).tolist()

    monkeypatch.delenv(be.BACKEND_ENV)
    be.reset_backend_cache()
    assert be.requested_backend() == "auto"


# ----------------------------------------------------------------------
# Lattice truth tables vs the scalar 2^n loop
# ----------------------------------------------------------------------
@settings(max_examples=80, deadline=None)
@given(lattices())
def test_lattice_truthtable_matches_scalar(lattice):
    fast = lattice_truthtable(lattice)
    slow = lattice.to_truth_table_scalar()
    assert fast == slow
    assert lattice.to_truth_table() == slow
    assert implements_table(lattice, slow)


@settings(max_examples=50, deadline=None)
@given(lattices(), st.integers(0, 2 ** 32 - 1))
def test_evaluate_assignments_matches_scalar(lattice, seed):
    rng = random.Random(seed)
    assignments = [rng.randrange(1 << lattice.n) for _ in range(8)]
    got = evaluate_assignments(lattice, np.array(assignments))
    want = [lattice.evaluate(a) for a in assignments]
    assert got.tolist() == want
    assert lattice.evaluate_batch(np.array(assignments)).tolist() == want


@settings(max_examples=50, deadline=None)
@given(lattices(max_side=3), st.integers(0, 2 ** 32 - 1))
def test_overlays_match_scalar_site_override(lattice, seed):
    """force_on/force_off agree with the scalar site_override hook."""
    rng = random.Random(seed)
    force_on = np.array([[rng.random() < 0.2 for _ in range(lattice.cols)]
                         for _ in range(lattice.rows)])
    force_off = np.array([[rng.random() < 0.2 for _ in range(lattice.cols)]
                          for _ in range(lattice.rows)]) & ~force_on

    def override(r, c, nominal):
        if force_on[r, c]:
            return True
        if force_off[r, c]:
            return False
        return nominal

    fast = lattice_truthtable(lattice, force_on=force_on,
                              force_off=force_off)
    for assignment in range(1 << lattice.n):
        assert fast.evaluate(assignment) == \
            lattice.evaluate(assignment, override)


@settings(max_examples=40, deadline=None)
@given(lattices(max_side=3), st.integers(0, 2 ** 32 - 1))
def test_conduction_tensor_matches_scalar_grid(lattice, seed):
    rng = random.Random(seed)
    assignments = [rng.randrange(1 << lattice.n) for _ in range(4)]
    tensor = conduction_tensor(lattice, np.array(assignments))
    for b, assignment in enumerate(assignments):
        assert tensor[b].tolist() == lattice.conduction_grid(assignment)


# ----------------------------------------------------------------------
# Placement validity vs the scalar predicate
# ----------------------------------------------------------------------
@settings(max_examples=80, deadline=None)
@given(fabrics(), st.data())
def test_placement_valid_kernels_match_scalar(states, data):
    rows, cols = states.shape
    t_rows = data.draw(st.integers(1, rows))
    t_cols = data.draw(st.integers(1, cols))
    codes_list = data.draw(st.lists(st.integers(0, 2),
                                    min_size=t_rows * t_cols,
                                    max_size=t_rows * t_cols))
    codes = np.array(codes_list, dtype=np.int8).reshape(t_rows, t_cols)
    target = _target_from_codes(codes)
    assert (lattice_site_codes(target) == codes).all()

    defect_map = _defect_map_from_states(states)
    assert (defect_map_states(defect_map) == states).all()

    placements = []
    for _ in range(4):
        row_map = tuple(sorted(data.draw(
            st.sets(st.integers(0, rows - 1), min_size=t_rows,
                    max_size=t_rows))))
        col_map = tuple(sorted(data.draw(
            st.sets(st.integers(0, cols - 1), min_size=t_cols,
                    max_size=t_cols))))
        placements.append((row_map, col_map))

    row_maps = np.array([p[0] for p in placements], dtype=np.int64)
    col_maps = np.array([p[1] for p in placements], dtype=np.int64)
    want = [placement_valid(target, defect_map, row_map, col_map)
            for row_map, col_map in placements]

    got_grid = placement_valid_grid(states, codes, row_maps, col_maps)
    assert got_grid.tolist() == want

    batch_states = np.broadcast_to(
        states, (len(placements),) + states.shape).copy()
    got_batch = placement_valid_batch(batch_states, codes, row_maps,
                                      col_maps)
    assert got_batch.tolist() == want


# ----------------------------------------------------------------------
# Batched labelling enumeration vs per-lattice evaluation
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(st.integers(1, 2), st.integers(1, 3), st.integers(1, 3),
       st.integers(0, 2 ** 32 - 1))
def test_evaluate_labellings_matches_lattice_eval(n, rows, cols, seed):
    rng = random.Random(seed)
    labels = []
    for var in range(n):
        labels.extend([Literal(var, True), Literal(var, False)])
    labels.extend([True, False])
    assignments = np.arange(1 << n)
    label_values = np.array([
        [lab.evaluate(int(a)) if isinstance(lab, Literal) else bool(lab)
         for a in assignments]
        for lab in labels
    ])
    grids = np.array([
        [[rng.randrange(len(labels)) for _ in range(cols)]
         for _ in range(rows)]
        for _ in range(5)
    ])
    tables = evaluate_labellings(label_values, grids)
    for b in range(5):
        lattice = Lattice(n, [[labels[grids[b, r, c]] for c in range(cols)]
                              for r in range(rows)])
        assert tables[b].tolist() == \
            lattice.to_truth_table_scalar().values.tolist()
