"""Property tests: faultlab's vectorized kernels vs the scalar references."""

import random

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.boolean import BooleanFunction
from repro.faultlab import (
    DefectBatch,
    clean_feasibility_batch,
    greedy_clean_subarray_batch,
    map_lattice_random_batch,
    placement_valid_batch,
    recovered_k_batch,
    recovered_k_exact_batch,
    sample_line_subsets,
    target_site_codes,
)
from repro.reliability import (
    greedy_clean_subarray,
    max_clean_square_exact,
    perfect_map,
    random_defect_map,
)
from repro.reliability.lattice_mapping import (
    map_lattice_random,
    placement_valid,
)
from repro.synthesis import synthesize_lattice_dual


def _random_maps(seed, count, max_side=10):
    rng = random.Random(seed)
    maps = []
    for _ in range(count):
        rows = rng.randint(1, max_side)
        cols = rng.randint(1, max_side)
        density = rng.choice([0.0, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0])
        maps.append(random_defect_map(rows, cols, density, rng))
    return maps


# ----------------------------------------------------------------------
# Clean-subarray extraction
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=9),
    cols=st.integers(min_value=1, max_value=9),
    density=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_greedy_kernel_matches_scalar_exactly(rows, cols, density,
                                                       seed):
    """The deterministic greedy algorithm: vectorized == scalar, bit-exact
    (same selected lines, not just the same k)."""
    defect_map = random_defect_map(rows, cols, density, random.Random(seed))
    batch = DefectBatch.from_defect_maps([defect_map])
    row_mask, col_mask = greedy_clean_subarray_batch(batch.defective())
    reference = greedy_clean_subarray(defect_map)
    assert tuple(np.nonzero(row_mask[0])[0].tolist()) == reference.rows
    assert tuple(np.nonzero(col_mask[0])[0].tolist()) == reference.cols


def test_greedy_kernel_matches_scalar_across_a_batch():
    maps = _random_maps(seed=1, count=60)
    # Same-shape groups batch together; check each group.
    by_shape: dict = {}
    for m in maps:
        by_shape.setdefault((m.rows, m.cols), []).append(m)
    for group in by_shape.values():
        batch = DefectBatch.from_defect_maps(group)
        ks = recovered_k_batch(batch.defective())
        for trial, defect_map in enumerate(group):
            assert ks[trial] == greedy_clean_subarray(defect_map).k


@settings(max_examples=25, deadline=None)
@given(
    side=st.integers(min_value=1, max_value=7),
    density=st.floats(min_value=0.0, max_value=0.6),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_greedy_bounded_by_exact(side, density, seed):
    defect_map = random_defect_map(side, side, density, random.Random(seed))
    batch = DefectBatch.from_defect_maps([defect_map])
    greedy_k = int(recovered_k_batch(batch.defective())[0])
    exact_k = int(recovered_k_exact_batch(batch)[0])
    assert greedy_k <= exact_k
    assert exact_k == max_clean_square_exact(defect_map).k


def test_perfect_batch_recovers_everything():
    batch = DefectBatch.from_defect_maps([perfect_map(6, 4)] * 3)
    row_mask, col_mask = greedy_clean_subarray_batch(batch.defective())
    assert row_mask.all() and col_mask.all()
    assert (recovered_k_batch(batch.defective()) == 4).all()
    assert clean_feasibility_batch(batch.defective(), 4).all()
    assert not clean_feasibility_batch(batch.defective(), 5).any()


# ----------------------------------------------------------------------
# Mapping checks
# ----------------------------------------------------------------------
def _target_lattice():
    f = BooleanFunction.from_expression("x1 x2 + x1' x3")
    return synthesize_lattice_dual(f.on)


def test_target_site_codes_shape_and_values():
    lattice = _target_lattice()
    codes = target_site_codes(lattice)
    assert codes.shape == (lattice.rows, lattice.cols)
    assert set(np.unique(codes)) <= {0, 1, 2}


@settings(max_examples=25, deadline=None)
@given(
    density=st.floats(min_value=0.0, max_value=0.4),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_placement_valid_matches_scalar(density, seed):
    """One random placement per fabric: vectorized verdicts == scalar."""
    lattice = _target_lattice()
    codes = target_site_codes(lattice)
    rng = random.Random(seed)
    maps = [random_defect_map(7, 7, density, rng) for _ in range(6)]
    batch = DefectBatch.from_defect_maps(maps)
    gen = np.random.default_rng(seed)
    row_maps = sample_line_subsets(gen, 6, 7, lattice.rows)
    col_maps = sample_line_subsets(gen, 6, 7, lattice.cols)
    verdicts = placement_valid_batch(batch.states, codes, row_maps, col_maps)
    for trial, defect_map in enumerate(maps):
        expected = placement_valid(
            lattice, defect_map,
            tuple(int(r) for r in row_maps[trial]),
            tuple(int(c) for c in col_maps[trial]))
        assert bool(verdicts[trial]) == expected


def test_sample_line_subsets_are_sorted_uniform_subsets():
    gen = np.random.default_rng(0)
    picks = sample_line_subsets(gen, 200, 8, 3)
    assert picks.shape == (200, 3)
    assert (np.diff(picks, axis=1) > 0).all()  # sorted, no repeats
    assert picks.min() >= 0 and picks.max() < 8
    # every line gets picked somewhere (uniformity smoke check)
    assert set(np.unique(picks)) == set(range(8))


def test_map_random_batch_agrees_with_scalar_statistics():
    lattice = _target_lattice()
    codes = target_site_codes(lattice)
    rng = random.Random(2)
    maps = [random_defect_map(8, 8, 0.15, rng) for _ in range(60)]
    batch = DefectBatch.from_defect_maps(maps)
    success, attempts = map_lattice_random_batch(
        batch.states, codes, np.random.default_rng(4), max_trials=80)
    scalar_successes = sum(
        map_lattice_random(lattice, m, random.Random(300 + i),
                           max_trials=80).success
        for i, m in enumerate(maps))
    assert attempts.min() >= 1 and attempts.max() <= 80
    assert (attempts[~success] == 80).all()
    # Two independent samplers of the same success probability.
    assert abs(int(success.sum()) - scalar_successes) <= 12


def test_map_random_batch_perfect_fabric_first_try():
    lattice = _target_lattice()
    codes = target_site_codes(lattice)
    batch = DefectBatch.from_defect_maps([perfect_map(6, 6)] * 4)
    success, attempts = map_lattice_random_batch(
        batch.states, codes, np.random.default_rng(0), max_trials=10)
    assert success.all()
    assert (attempts == 1).all()
