"""NPN-canonical cache keys, witness rewrites, and the SQLite store."""

from __future__ import annotations

import random

import pytest

from repro.boolean.npn import apply_transform, npn_canonical
from repro.boolean.truthtable import TruthTable
from repro.engine.cache import (
    CachedResult,
    ResultCache,
    canonical_cache_key,
    canonical_polarity_table,
    lattice_from_text,
    lattice_to_text,
    transform_lattice_from_canonical,
    transform_lattice_to_canonical,
)
from repro.engine.jobs import StrategyOutcome
from repro.synthesis.compose import constant_lattice
from repro.synthesis.lattice_dual import synthesize_lattice_dual
from repro.synthesis.optimize import fold_lattice


def _random_tables(count: int, seed: int, max_vars: int = 4):
    rng = random.Random(seed)
    for _ in range(count):
        n = rng.randint(1, max_vars)
        bits = rng.getrandbits(1 << n)
        yield TruthTable.from_bits(n, bits)


def _synthesize(table: TruthTable):
    if table.is_constant():
        return constant_lattice(table.n, bool(table.evaluate(0)))
    return fold_lattice(synthesize_lattice_dual(table), table)


class TestCanonicalRoundTrip:
    def test_canonicalize_synthesize_untransform(self):
        """The satellite contract: canonicalize -> synthesize on the
        canonical-polarity function -> rewrite back through the stored
        witness -> the recovered lattice evaluates the original function
        on all 2^n inputs."""
        for table in _random_tables(40, seed=2017):
            canon, transform = canonical_cache_key(table)
            g = canonical_polarity_table(table, transform)
            lattice_g = _synthesize(g)
            recovered = transform_lattice_from_canonical(lattice_g, transform)
            assert recovered.implements(table), (
                f"witness rewrite broke {table!r} via {transform}")

    def test_forward_transform_is_inverse(self):
        """to_canonical(from_canonical(L)) and vice versa are identities."""
        for table in _random_tables(25, seed=7):
            _, transform = canonical_cache_key(table)
            g = canonical_polarity_table(table, transform)
            lattice_f = _synthesize(table)
            lattice_g = transform_lattice_to_canonical(lattice_f, transform)
            assert lattice_g.implements(g)
            back = transform_lattice_from_canonical(lattice_g, transform)
            assert back == lattice_f

    def test_canonical_polarity_reaches_g_by_input_transforms(self):
        """g(x) = f(sigma(x)): re-deriving g through apply_transform with
        the output negation stripped must agree."""
        for table in _random_tables(25, seed=99):
            _, transform = canonical_cache_key(table)
            g = canonical_polarity_table(table, transform)
            canonical = apply_transform(table, transform)
            expected = ~canonical if transform.output_negate else canonical
            assert g == expected

    def test_npn_class_members_share_keys(self):
        base = TruthTable.from_bits(3, 0b10010110)  # xor3
        canon_base, _ = canonical_cache_key(base)
        rng = random.Random(5)
        for _ in range(5):
            perm = list(range(3))
            rng.shuffle(perm)
            variant = base.permute(perm)
            canon, _ = canonical_cache_key(variant)
            assert canon == canon_base

    def test_complement_shares_npn_key_distinct_polarity_table(self):
        f = TruthTable.from_bits(3, 0b11101000)  # maj3
        g = ~f
        key_f, t_f = canonical_cache_key(f)
        key_g, t_g = canonical_cache_key(g)
        assert key_f == key_g  # same NPN class
        # but the canonical-polarity functions each round-trip correctly
        for table, transform in ((f, t_f), (g, t_g)):
            gp = canonical_polarity_table(table, transform)
            lattice = _synthesize(gp)
            assert transform_lattice_from_canonical(
                lattice, transform).implements(table)

    def test_large_n_uses_semicanonical_witness(self):
        """Past n = 6 the key comes from npn_semicanonical: still a real
        witness (g reachable from f by input transforms alone), and
        classmates share the key when the invariants are tie-free."""
        from repro.boolean.npn import NpnTransform, npn_semicanonical

        rng = random.Random(13)
        table = TruthTable.from_bits(7, rng.getrandbits(128))
        canon, transform = canonical_cache_key(table)
        rep, semi_transform = npn_semicanonical(table)
        assert transform == semi_transform
        assert canon == rep.content_hash()
        # the witness is real: the canonical-polarity g round-trips
        g = canonical_polarity_table(table, transform)
        assert apply_transform(table, transform) == \
            (~g if transform.output_negate else g)
        # classmates land on the same key (random n=7 tables are tie-free)
        for _ in range(5):
            mate = apply_transform(table, NpnTransform(
                tuple(rng.sample(range(7), 7)), rng.getrandbits(7),
                rng.random() < 0.5))
            mate_canon, _ = canonical_cache_key(mate)
            assert mate_canon == canon

    def test_n6_gets_exact_npn_keys(self):
        """The lifted limit: n = 6 classmates share one canonical key
        (no identity-witness fallback hashing)."""
        rng = random.Random(11)
        from repro.boolean.npn import NpnTransform, apply_transform

        table = TruthTable.from_bits(6, rng.getrandbits(64))
        canon, transform = canonical_cache_key(table)
        assert transform.permutation != tuple(range(6)) or \
            transform.input_negation_mask != 0 or transform.output_negate or \
            apply_transform(table, transform) == table
        for _ in range(5):
            mate = apply_transform(table, NpnTransform(
                tuple(rng.sample(range(6), 6)), rng.getrandbits(6),
                rng.random() < 0.5))
            mate_canon, mate_transform = canonical_cache_key(mate)
            assert mate_canon == canon
            g = canonical_polarity_table(mate, mate_transform)
            assert apply_transform(mate, mate_transform) == \
                (~g if mate_transform.output_negate else g)

    def test_exhaustive_n2(self):
        """Every 2-variable function round-trips (16 functions, cheap)."""
        for bits in range(16):
            table = TruthTable.from_bits(2, bits)
            _, transform = canonical_cache_key(table)
            g = canonical_polarity_table(table, transform)
            lattice = _synthesize(g)
            assert transform_lattice_from_canonical(
                lattice, transform).implements(table)


class TestLatticeSerialisation:
    def test_round_trip(self):
        for table in _random_tables(15, seed=3):
            lattice = _synthesize(table)
            text = lattice_to_text(lattice)
            assert lattice_from_text(lattice.n, text) == lattice


class TestResultCache:
    def _entry(self, table: TruthTable) -> CachedResult:
        lattice = _synthesize(table)
        outcome = StrategyOutcome("dual", "ok", lattice.area, lattice.shape,
                                  0.1, "")
        return CachedResult("dual", lattice, (outcome,))

    def test_put_get_memory(self):
        table = TruthTable.from_bits(3, 0b10010110)
        canon, _ = canonical_cache_key(table)
        with ResultCache() as cache:
            assert cache.get(3, canon, False, "cfg") is None
            cache.put(3, canon, False, "cfg", self._entry(table))
            got = cache.get(3, canon, False, "cfg")
            assert got is not None
            assert got.strategy == "dual"
            assert got.lattice.implements(table)
            assert got.outcomes[0].strategy == "dual"
            assert len(cache) == 1

    def test_config_isolation(self):
        table = TruthTable.from_bits(3, 0b10010110)
        canon, _ = canonical_cache_key(table)
        with ResultCache() as cache:
            cache.put(3, canon, False, "cfg-a", self._entry(table))
            assert cache.get(3, canon, False, "cfg-b") is None

    def test_polarity_slots_are_distinct(self):
        """A class stores up to two lattices: one per witness polarity."""
        f = TruthTable.from_bits(2, 0b1000)  # AND2
        g = ~f                                # NAND2: same NPN class
        key_f, t_f = canonical_cache_key(f)
        key_g, t_g = canonical_cache_key(g)
        assert key_f == key_g
        assert t_f.output_negate != t_g.output_negate
        with ResultCache() as cache:
            cache.put(2, key_f, t_f.output_negate, "cfg", self._entry(f))
            assert cache.get(2, key_g, t_g.output_negate, "cfg") is None
            cache.put(2, key_g, t_g.output_negate, "cfg", self._entry(g))
            assert len(cache) == 2
            got = cache.get(2, key_f, t_f.output_negate, "cfg")
            assert got is not None and got.lattice.implements(f)

    def test_persistence_across_reopen(self, tmp_path):
        path = str(tmp_path / "cache.sqlite")
        table = TruthTable.from_bits(4, 0x6996)
        canon, _ = canonical_cache_key(table)
        with ResultCache(path) as cache:
            cache.put(4, canon, False, "cfg", self._entry(table))
        with ResultCache(path) as cache:
            got = cache.get(4, canon, False, "cfg")
            assert got is not None
            assert got.lattice.implements(table)

    def test_clear(self):
        table = TruthTable.from_bits(2, 0b0110)
        canon, _ = canonical_cache_key(table)
        with ResultCache() as cache:
            cache.put(2, canon, False, "cfg", self._entry(table))
            cache.clear()
            assert len(cache) == 0


def test_cache_key_width_is_stable():
    """Keys are fixed-width content hashes so ranges of n never collide
    textually (the wire format serialises n, so equal-bits tables of
    different arity hash apart)."""
    canon1, _ = canonical_cache_key(TruthTable.from_bits(1, 0b01))
    canon4, _ = canonical_cache_key(TruthTable.from_bits(4, 1))
    assert len(canon1) == 64
    assert len(canon4) == 64
    assert canon1 != canon4


def test_npn_canonical_matches_module_for_small_n():
    table = TruthTable.from_bits(4, 0x1234)
    canon_text, transform = canonical_cache_key(table)
    canonical, expected = npn_canonical(table)
    assert transform == expected
    assert canon_text == canonical.content_hash()


@pytest.mark.parametrize("bits", [0, 0xFF])
def test_constant_tables_round_trip(bits):
    table = TruthTable.from_bits(3, bits)
    _, transform = canonical_cache_key(table)
    g = canonical_polarity_table(table, transform)
    lattice = _synthesize(g)
    assert transform_lattice_from_canonical(lattice, transform).implements(table)
