"""Tests for defect-aware lattice mapping (sites onto defective fabrics)."""

import random

import pytest

from repro.boolean import BooleanFunction, Literal
from repro.crossbar import Lattice
from repro.reliability import (
    CrosspointState,
    DefectMap,
    map_lattice_exhaustive,
    map_lattice_random,
    mapping_success_sweep,
    perfect_map,
    placement_valid,
    random_defect_map,
    site_compatible,
    verify_mapped_lattice,
)
from repro.synthesis import fold_lattice, synthesize_lattice_dual


def xnor_lattice():
    f = BooleanFunction.from_expression("x1 x2 + x1' x2'")
    return fold_lattice(synthesize_lattice_dual(f.on), f.on), f.on


class TestSiteCompatibility:
    def test_ok_hosts_anything(self):
        for site in (True, False, Literal(0, True)):
            assert site_compatible(CrosspointState.OK, site)

    def test_stuck_closed_is_the_constant_one(self):
        assert site_compatible(CrosspointState.STUCK_CLOSED, True)
        assert not site_compatible(CrosspointState.STUCK_CLOSED, False)
        assert not site_compatible(CrosspointState.STUCK_CLOSED, Literal(0))

    def test_stuck_open_is_the_constant_zero(self):
        assert site_compatible(CrosspointState.STUCK_OPEN, False)
        assert not site_compatible(CrosspointState.STUCK_OPEN, True)
        assert not site_compatible(CrosspointState.STUCK_OPEN, Literal(1))


class TestPlacement:
    def test_perfect_fabric_always_maps(self):
        lattice, table = xnor_lattice()
        result = map_lattice_random(lattice, perfect_map(4, 4),
                                    random.Random(0))
        assert result.success and result.trials == 1
        assert verify_mapped_lattice(lattice, table, perfect_map(4, 4), result)

    def test_target_larger_than_fabric_raises(self):
        lattice, _ = xnor_lattice()
        with pytest.raises(ValueError):
            map_lattice_random(lattice, perfect_map(1, 1), random.Random(0))

    def test_stuck_closed_under_literal_rejected(self):
        lattice, _ = xnor_lattice()  # 2x2, all literal sites
        defects = {(r, c): CrosspointState.STUCK_CLOSED
                   for r in range(2) for c in range(2)}
        fabric = DefectMap(2, 2, defects)
        assert not placement_valid(lattice, fabric, (0, 1), (0, 1))

    def test_stuck_closed_on_unused_column_rejected(self):
        lattice, _ = xnor_lattice()
        # fabric 2x3; middle column unused but permanently conducting at a
        # used row -> could bridge the two used columns
        fabric = DefectMap(2, 3, {(0, 1): CrosspointState.STUCK_CLOSED})
        assert not placement_valid(lattice, fabric, (0, 1), (0, 2))
        # placing the target over the defect-free columns adjacent is fine
        clean = DefectMap(2, 3, {})
        assert placement_valid(lattice, clean, (0, 1), (0, 2))

    def test_exploiting_stuck_closed_as_padding_one(self):
        # Target with a constant-1 padding site (an AND separator) can be
        # placed right on top of a stuck-closed fabric site.
        target = Lattice(2, [[Literal(0)], [True], [Literal(1)]])
        fabric = DefectMap(3, 1, {(1, 0): CrosspointState.STUCK_CLOSED})
        result = map_lattice_exhaustive(target, fabric)
        assert result.success
        assert result.exploited_defects == 1
        table = target.to_truth_table()
        assert verify_mapped_lattice(target, table, fabric, result)

    def test_exploiting_stuck_open_as_padding_zero(self):
        # OR-separator columns (constant 0) land on stuck-open sites.
        target = Lattice(2, [[Literal(0), False, Literal(1)]])
        fabric = DefectMap(1, 3, {(0, 1): CrosspointState.STUCK_OPEN})
        result = map_lattice_exhaustive(target, fabric)
        assert result.success and result.exploited_defects == 1
        assert verify_mapped_lattice(target, target.to_truth_table(),
                                     fabric, result)

    def test_exhaustive_proves_infeasibility(self):
        target = Lattice(1, [[Literal(0)]])
        fabric = DefectMap(1, 1, {(0, 0): CrosspointState.STUCK_OPEN})
        result = map_lattice_exhaustive(target, fabric)
        assert not result.success

    def test_random_mapped_lattices_verify(self):
        lattice, table = xnor_lattice()
        successes = 0
        for seed in range(30):
            rng = random.Random(seed)
            fabric = random_defect_map(6, 6, 0.08, rng)
            result = map_lattice_random(lattice, fabric, rng, max_trials=100)
            if result.success:
                successes += 1
                assert verify_mapped_lattice(lattice, table, fabric, result)
        assert successes > 15  # most draws at 8% density are mappable


class TestSweep:
    def test_success_degrades_with_density(self):
        lattice, _ = xnor_lattice()
        rng = random.Random(5)
        rows = mapping_success_sweep(lattice, 2, [0.0, 0.1, 0.4],
                                     trials=15, rng=rng)
        assert rows[0]["success_rate"] == 1.0
        assert rows[0]["success_rate"] >= rows[-1]["success_rate"]
