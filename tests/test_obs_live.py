"""Tests for the live-observability layer: timeline, sampler, health.

Everything here drives a private :class:`MetricsRegistry` plus manual
``tick_once()`` calls — frame math must be exact and deterministic, so
no background threads or wall-clock sleeps are involved except where a
thread *is* the thing under test (the sampler).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs import quantile_from_counts
from repro.obs.health import HealthMonitor, WatchdogRule, \
    default_server_rules
from repro.obs.metrics import MetricsRegistry
from repro.obs.sampler import StackSampler, sample_for
from repro.obs.timeline import MetricsRecorder, read_process_resources


def _recorder(reg: MetricsRegistry, **kwargs) -> MetricsRecorder:
    kwargs.setdefault("interval", 3600.0)  # manual ticks only
    return MetricsRecorder(registry_=reg, **kwargs)


class TestRecorderFrameMath:
    def test_counter_deltas_sum_back_exactly(self):
        reg = MetricsRegistry()
        counter = reg.counter("work_total", "help")
        recorder = _recorder(reg)
        for increment in (3, 0, 7, 1, 12):
            counter.inc(increment)
            recorder.tick_once()
        frames = recorder.history()
        deltas = [f["counters"]["work_total"]["delta"] for f in frames]
        assert deltas == [3, 0, 7, 1, 12]
        assert sum(deltas) == counter.value
        assert frames[-1]["counters"]["work_total"]["value"] == 23

    def test_cursors_are_dense_and_monotonic(self):
        reg = MetricsRegistry()
        recorder = _recorder(reg)
        for _ in range(5):
            recorder.tick_once()
        cursors = [f["cursor"] for f in recorder.history()]
        assert cursors == [1, 2, 3, 4, 5]
        assert recorder.cursor == 5

    def test_history_since_pages_losslessly(self):
        reg = MetricsRegistry()
        recorder = _recorder(reg)
        for _ in range(6):
            recorder.tick_once()
        first = recorder.history(since=0)[:3]
        rest = recorder.history(since=first[-1]["cursor"])
        assert [f["cursor"] for f in first + rest] == [1, 2, 3, 4, 5, 6]
        # limit keeps the *newest* N — the watchdog-window shape.
        assert [f["cursor"] for f in recorder.history(limit=2)] == [5, 6]

    def test_gauges_report_last_value(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("depth", "help")
        recorder = _recorder(reg)
        gauge.set(4)
        recorder.tick_once()
        gauge.set(9)
        recorder.tick_once()
        frames = recorder.history()
        assert [f["gauges"]["depth"] for f in frames] == [4, 9]

    def test_registry_reset_clamps_deltas_at_zero(self):
        reg = MetricsRegistry()
        reg.counter("seen_total", "help").inc(10)
        recorder = _recorder(reg)
        # A "reset": a fresh registry reusing the series name from zero.
        fresh = MetricsRegistry()
        fresh.counter("seen_total", "help").inc(2)
        recorder._registry = fresh
        frame = recorder.tick_once()
        assert frame["counters"]["seen_total"]["delta"] == 0

    def test_rolling_p99_matches_direct_computation(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat_seconds", "help",
                             buckets=(0.001, 0.01, 0.1, 1.0))
        recorder = _recorder(reg, quantile_window=3)
        per_tick = [(0.005,) * 10, (0.05,) * 10, (0.5,) * 5]
        for values in per_tick:
            for value in values:
                hist.observe(value)
            recorder.tick_once()
        frames = recorder.history()
        # Re-derive the expected rolling p99 from the summed window
        # deltas — the same bucket interpolation, computed directly.
        window = frames[-3:]
        summed = [0] * 5
        for frame in window:
            for index, count in enumerate(
                    frame["histograms"]["lat_seconds"]["delta_buckets"]):
                summed[index] += count
        expected = quantile_from_counts((0.001, 0.01, 0.1, 1.0),
                                        summed, 0.99)
        assert frames[-1]["histograms"]["lat_seconds"]["p99"] == \
            pytest.approx(expected)
        assert expected > 0.1  # the slow tail dominates the tail quantile

    def test_idle_window_quantiles_read_zero(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat_seconds", "help")
        hist.observe(5.0)  # pre-recording traffic
        recorder = _recorder(reg, quantile_window=2)
        recorder.tick_once()
        frame = recorder.tick_once()
        entry = frame["histograms"]["lat_seconds"]
        assert entry["delta"] == 0
        assert entry["p99"] == 0.0  # quiet window, not lifetime latency

    def test_coarse_ring_aggregates_deltas(self):
        reg = MetricsRegistry()
        counter = reg.counter("work_total", "help")
        recorder = _recorder(reg, coarse_stride=3)
        for _ in range(6):
            counter.inc(2)
            recorder.tick_once()
        coarse = recorder.history(resolution="coarse")
        assert [f["cursor"] for f in coarse] == [3, 6]
        assert all(f["counters"]["work_total"]["delta"] == 6
                   for f in coarse)
        assert all(f["stride"] == 3 for f in coarse)

    def test_fine_ring_is_bounded(self):
        reg = MetricsRegistry()
        recorder = _recorder(reg, capacity=4)
        for _ in range(10):
            recorder.tick_once()
        frames = recorder.history()
        assert len(frames) == 4
        assert [f["cursor"] for f in frames] == [7, 8, 9, 10]

    def test_background_thread_ticks_and_stops(self):
        reg = MetricsRegistry()
        recorder = MetricsRecorder(interval=0.01, registry_=reg)
        recorder.start()
        frames = recorder.wait_for(since=0, timeout=5.0)
        recorder.stop()
        assert frames and frames[0]["cursor"] >= 1
        resting = recorder.cursor
        time.sleep(0.05)
        assert recorder.cursor == resting  # no ticks after stop


class TestProcessResources:
    def test_resources_are_positive_and_sane(self):
        resources = read_process_resources()
        assert resources["cpu_seconds"] > 0
        assert resources["rss_bytes"] > 10 * 2**20  # a real interpreter
        assert resources["max_rss_bytes"] >= 0

    def test_frames_carry_resource_section(self):
        reg = MetricsRegistry()
        recorder = _recorder(reg)
        frame = recorder.tick_once()
        assert frame["resources"]["rss_bytes"] > 0
        # The scrape also publishes process gauges into the registry.
        assert "process_resident_memory_bytes" in frame["gauges"]


class TestSampler:
    @staticmethod
    def _spin(stop: threading.Event) -> None:
        # Burn CPU in _spin's own frame (no genexpr) so sampled leaves
        # attribute self-time here deterministically.
        while not stop.is_set():
            total = 0
            for i in range(500):
                total += i * i

    def test_attributes_hot_loop_and_collapses_stacks(self):
        stop = threading.Event()
        worker = threading.Thread(target=self._spin, args=(stop,))
        worker.start()
        try:
            report = sample_for(0.3, interval=0.002,
                                thread_ids={worker.ident})
        finally:
            stop.set()
            worker.join()
        assert report.total > 10
        fraction = report.hot_fraction(
            lambda filename, function: function == "_spin")
        assert fraction > 0.9
        for line in report.collapsed().rstrip("\n").split("\n"):
            path, _, count = line.rpartition(" ")
            assert path and count.isdigit()
            assert ";" in path or ":" in path

    def test_idle_leaves_are_skipped_not_counted(self):
        stop = threading.Event()
        waiter = threading.Thread(target=stop.wait)
        waiter.start()
        try:
            report = sample_for(0.15, interval=0.005,
                                thread_ids={waiter.ident})
        finally:
            stop.set()
            waiter.join()
        assert report.total == 0
        assert report.skipped_idle > 5

    def test_top_table_renders(self):
        stop = threading.Event()
        worker = threading.Thread(target=self._spin, args=(stop,))
        worker.start()
        try:
            with StackSampler(interval=0.002,
                              thread_ids={worker.ident}) as sampler:
                time.sleep(0.2)
            report = sampler.report()
        finally:
            stop.set()
            worker.join()
        table = report.render_top(5)
        assert "samples over" in table
        assert "_spin" in table
        payload = report.as_dict(top_n=3)
        assert payload["total_samples"] == report.total
        assert len(payload["top"]) <= 3

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            StackSampler(interval=0.0)


class TestWatchdogs:
    def test_gauge_growth_fires_and_recovers(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("server_queue_depth", "help")
        rule = WatchdogRule("growth", "gauge_growth", "server_queue_depth",
                            threshold=5.0, window=2, clear_after=2)
        monitor = HealthMonitor([rule])
        recorder = _recorder(reg, health=monitor)
        for depth in (1, 3, 8):  # strictly growing, last >= threshold
            gauge.set(depth)
            recorder.tick_once()
        status = monitor.status()
        assert status["status"] == "degraded"
        assert status["alerts"][0]["rule"] == "growth"
        alerts = reg.counter("nanoxbar_alerts_total", "watchdog rule "
                             "fire transitions", labels={"rule": "growth"})
        assert alerts.value == 1
        for _ in range(2):  # flat depth: quiet frames clear the alert
            recorder.tick_once()
        assert monitor.status()["status"] == "ok"
        assert alerts.value == 1  # recovery does not re-count

    def test_rate_threshold_with_label_filter(self):
        reg = MetricsRegistry()
        failed = reg.counter("server_jobs_total", "help",
                             labels={"kind": "synthesis",
                                     "state": "failed"})
        done = reg.counter("server_jobs_total", "help",
                           labels={"kind": "synthesis", "state": "done"})
        rule = WatchdogRule("failures", "rate_threshold",
                            "server_jobs_total",
                            label_filter={"state": "failed"},
                            threshold=0.5, window=1)
        monitor = HealthMonitor([rule])
        recorder = _recorder(reg, health=monitor)
        done.inc(1000)  # completions alone must not trip the rule
        recorder.tick_once()
        assert monitor.status()["status"] == "ok"
        failed.inc(10_000)  # elapsed is tiny, so any burst exceeds 0.5/s
        recorder.tick_once()
        assert monitor.status()["status"] == "degraded"

    def test_for_frames_hysteresis_delays_firing(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat_seconds", "help", buckets=(0.01, 10.0))
        rule = WatchdogRule("slow", "quantile_ceiling", "lat_seconds",
                            threshold=0.01, for_frames=2)
        monitor = HealthMonitor([rule])
        recorder = _recorder(reg, health=monitor, quantile_window=5)
        hist.observe(5.0)
        recorder.tick_once()
        assert monitor.status()["status"] == "ok"  # one breach: not yet
        hist.observe(5.0)
        recorder.tick_once()
        assert monitor.status()["status"] == "degraded"

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            WatchdogRule("x", "unknown_kind", "s")
        with pytest.raises(ValueError):
            WatchdogRule("x", "gauge_growth", "s", window=0)
        with pytest.raises(ValueError):
            WatchdogRule("x", "quantile_ceiling", "s", quantile=0.9)
        with pytest.raises(ValueError):
            HealthMonitor([WatchdogRule("dup", "gauge_growth", "s"),
                           WatchdogRule("dup", "gauge_growth", "t")])

    def test_default_server_rules_cover_the_three_kinds(self):
        rules = default_server_rules()
        assert {rule.kind for rule in rules} == \
            {"gauge_growth", "quantile_ceiling", "rate_threshold"}
        monitor = HealthMonitor(rules)
        reg = MetricsRegistry()
        recorder = _recorder(reg, health=monitor)
        recorder.tick_once()  # no traffic: everything stays quiet
        assert monitor.status()["status"] == "ok"
        assert len(monitor.status()["rules"]) == 4
