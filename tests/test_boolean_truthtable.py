"""Unit and property tests for dense truth tables."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.boolean import Cube, TruthTable


def random_tables(n=4):
    return st.integers(min_value=0, max_value=(1 << (1 << n)) - 1).map(
        lambda bits: TruthTable.from_bits(n, bits)
    )


class TestConstruction:
    def test_constant_tables(self):
        zero = TruthTable.constant(3, False)
        one = TruthTable.constant(3, True)
        assert zero.is_contradiction() and not zero.is_tautology()
        assert one.is_tautology() and not one.is_contradiction()

    def test_variable_projection(self):
        t = TruthTable.variable(3, 1)
        for m in range(8):
            assert t.evaluate(m) == bool((m >> 1) & 1)

    def test_from_minterms_roundtrip(self):
        t = TruthTable.from_minterms(4, [0, 5, 9])
        assert sorted(t.minterms()) == [0, 5, 9]

    def test_from_minterms_range_check(self):
        with pytest.raises(ValueError):
            TruthTable.from_minterms(2, [4])

    def test_from_cubes_is_or_of_cubes(self):
        t = TruthTable.from_cubes(3, [Cube.from_string("1--"), Cube.from_string("-1-")])
        for m in range(8):
            assert t.evaluate(m) == bool((m & 1) or (m & 2))

    def test_from_bits_roundtrip(self):
        t = TruthTable.from_bits(3, 0b10110010)
        assert t.bits == 0b10110010

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            TruthTable(2, [True, False])

    def test_too_many_variables_rejected(self):
        with pytest.raises(ValueError):
            TruthTable.constant(30, False)

    def test_immutability(self):
        t = TruthTable.constant(2, False)
        with pytest.raises(AttributeError):
            t.n = 3
        with pytest.raises(ValueError):
            t.values[0] = True


class TestAlgebra:
    def test_and_or_xor_not(self):
        a = TruthTable.variable(2, 0)
        b = TruthTable.variable(2, 1)
        assert sorted((a & b).minterms()) == [3]
        assert sorted((a | b).minterms()) == [1, 2, 3]
        assert sorted((a ^ b).minterms()) == [1, 2]
        assert sorted((~a).minterms()) == [0, 2]

    def test_implies(self):
        a = TruthTable.from_minterms(3, [1, 3])
        b = TruthTable.from_minterms(3, [1, 3, 5])
        assert a.implies(b)
        assert not b.implies(a)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            TruthTable.constant(2, True) & TruthTable.constant(3, True)


class TestDual:
    def test_dual_of_and_is_or(self):
        a = TruthTable.variable(2, 0)
        b = TruthTable.variable(2, 1)
        assert (a & b).dual() == (a | b)

    def test_parity_is_self_dual_for_odd_vars(self):
        t = TruthTable.from_callable(3, lambda m: bin(m).count("1") % 2 == 1)
        assert t.is_self_dual()

    def test_majority_is_self_dual(self):
        t = TruthTable.from_callable(3, lambda m: bin(m).count("1") >= 2)
        assert t.is_self_dual()

    @given(random_tables())
    def test_dual_is_involution(self, t):
        assert t.dual().dual() == t

    @given(random_tables())
    def test_dual_pointwise_definition(self, t):
        full = (1 << t.n) - 1
        d = t.dual()
        for m in range(1 << t.n):
            assert d.evaluate(m) == (not t.evaluate(m ^ full))


class TestStructure:
    def test_cofactor_shannon_expansion(self):
        t = TruthTable.from_callable(3, lambda m: (m & 1) and not (m & 4))
        f0, f1 = t.shannon(0)
        # f = ~x0 f0 + x0 f1 reconstructed pointwise
        for m in range(8):
            sub = ((m >> 1) & 0b11)
            expected = f1.evaluate(sub) if (m & 1) else f0.evaluate(sub)
            assert t.evaluate(m) == expected

    def test_restrict_keeps_dimension(self):
        t = TruthTable.variable(3, 0)
        r = t.restrict(0, True)
        assert r.n == 3 and r.is_tautology()

    def test_depends_on_and_support(self):
        t = TruthTable.from_callable(3, lambda m: bool(m & 1))
        assert t.support() == [0]
        assert t.depends_on(0)
        assert not t.depends_on(2)

    def test_permute_swaps_roles(self):
        t = TruthTable.from_callable(2, lambda m: bool(m & 1))  # f = x0
        swapped = t.permute([1, 0])
        assert swapped == TruthTable.variable(2, 1)

    def test_permute_validation(self):
        with pytest.raises(ValueError):
            TruthTable.constant(2, True).permute([0, 0])

    def test_extend_ignores_new_variables(self):
        t = TruthTable.variable(2, 1)
        big = t.extend(2)
        assert big.n == 4
        for m in range(16):
            assert big.evaluate(m) == bool((m >> 1) & 1)

    def test_compose_variable_substitution(self):
        t = TruthTable.variable(2, 0)  # f = x0
        g = TruthTable.variable(2, 1)  # g = x1
        composed = t.compose_variable(0, g)
        assert composed == g

    @given(random_tables(), st.integers(min_value=0, max_value=3), st.booleans())
    def test_cofactor_pointwise(self, t, var, value):
        cof = t.cofactor(var, value)
        for sub in range(1 << 3):
            low = sub & ((1 << var) - 1)
            high = (sub >> var) << (var + 1)
            full = high | low | ((1 << var) if value else 0)
            assert cof.evaluate(sub) == t.evaluate(full)

    @given(random_tables())
    def test_minterm_cubes_reconstruct(self, t):
        again = TruthTable.from_cubes(t.n, t.minterm_cubes())
        assert again == t

    @given(random_tables())
    def test_hash_consistent_with_eq(self, t):
        clone = TruthTable(t.n, np.array(t.values))
        assert clone == t and hash(clone) == hash(t)


class TestSerialization:
    """Packed-bit wire format (to_bytes/from_bytes/content_hash)."""

    @given(random_tables())
    def test_round_trip(self, t):
        again = TruthTable.from_bytes(t.to_bytes())
        assert again == t

    def test_round_trip_all_arities(self):
        import random as _random

        rng = _random.Random(3)
        for n in range(0, 8):
            bits = rng.getrandbits(1 << n)
            t = TruthTable.from_bits(n, bits)
            assert TruthTable.from_bytes(t.to_bytes()) == t

    def test_content_hash_distinguishes_arity(self):
        """Equal bit patterns over different variable counts hash apart
        (the header serialises n)."""
        t1 = TruthTable.from_bits(1, 0b01)
        t2 = TruthTable.from_bits(2, 0b0101)  # same function, extended
        assert t1.content_hash() != t2.content_hash()
        assert t1.content_hash() == TruthTable.from_bits(1, 0b01).content_hash()

    def test_bad_payloads_rejected(self):
        import pytest

        t = TruthTable.from_bits(3, 0b10110001)
        data = t.to_bytes()
        with pytest.raises(ValueError):
            TruthTable.from_bytes(data[:3])               # truncated header
        with pytest.raises(ValueError):
            TruthTable.from_bytes(b"XX1\x00" + data[4:])  # bad magic
        with pytest.raises(ValueError):
            TruthTable.from_bytes(data + b"\x00")          # size mismatch
        mangled = bytearray(TruthTable.from_bits(1, 0b01).to_bytes())
        mangled[-1] |= 0x80                                # padding bit set
        with pytest.raises(ValueError):
            TruthTable.from_bytes(bytes(mangled))
