"""Tests for the benchmark suite, table rendering, experiments and CLI."""

from typing import ClassVar

import pytest

from repro.eval import (
    all_experiments,
    by_name,
    format_markdown,
    format_table,
    get_experiment,
    standard_suite,
    suite,
)
from repro.eval.cli import main as cli_main


class TestBenchsuite:
    def test_suite_nonempty_and_unique_names(self):
        names = [b.name for b in standard_suite()]
        assert len(names) >= 15
        assert len(names) == len(set(names))

    def test_by_name(self):
        benchmark = by_name("xnor2")
        assert benchmark.n == 2
        with pytest.raises(KeyError):
            by_name("missing")

    def test_tag_selection(self):
        dred = suite(tags=["d-reducible"])
        assert dred and all("d-reducible" in b.tags for b in dred)

    def test_exclusion_and_size_filter(self):
        small = suite(exclude=["large"], max_vars=4)
        assert all(b.n <= 4 for b in small)
        assert all("large" not in b.tags for b in small)

    def test_known_function_semantics(self):
        xor5 = by_name("xor5").function
        for m in (0, 1, 0b10101, 0b11111):
            assert xor5.evaluate(m) == (bin(m).count("1") % 2 == 1)
        maj5 = by_name("maj5").function
        assert maj5.evaluate(0b00111) and not maj5.evaluate(0b00011)
        mux2 = by_name("mux2").function  # select bit 0, data bits 1..2
        assert mux2.evaluate(0b010) and not mux2.evaluate(0b100)
        assert mux2.evaluate(0b101)

    def test_fig4_benchmark_matches_paper_expression(self):
        fig4 = by_name("fig4").function
        assert fig4.n == 6
        assert fig4.evaluate(0b000111)  # x1 x2 x3
        assert fig4.evaluate(0b111000)  # x4 x5 x6
        assert not fig4.evaluate(0b000001)

    def test_dreducible_benchmarks_are_reducible(self):
        from repro.boolean import is_d_reducible

        for benchmark in suite(tags=["d-reducible"]):
            assert is_d_reducible(benchmark.function.on), benchmark.name

    def test_pla_benchmark_loads(self):
        pla5 = by_name("pla5")
        assert pla5.n == 5
        assert 0 < pla5.function.on.count_ones() < 32


class TestTables:
    ROWS: ClassVar[list[dict]] = [
        {"name": "a", "value": 1.23456, "shape": (2, 3), "ok": True},
        {"name": "bb", "value": 2.0, "shape": (10, 1), "ok": False},
    ]

    def test_format_table_alignment(self):
        text = format_table(self.ROWS, ["name", "value", "shape", "ok"])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.235" in text and "2x3" in text and "yes" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="t")

    def test_format_table_title_and_missing_cols(self):
        text = format_table([{"a": 1}], ["a", "b"], title="T")
        assert text.startswith("T")

    def test_format_markdown(self):
        text = format_markdown(self.ROWS, ["name", "ok"])
        assert text.splitlines()[0] == "| name | ok |"
        assert "| a | yes |" in text


class TestExperiments:
    def test_registry_complete(self):
        ids = {e.experiment_id for e in all_experiments()}
        assert {"fig1", "fig3", "fig4", "fig5", "pcircuit", "dreducible",
                "optimal", "bist", "bisd", "bism", "fig6", "recovery",
                "variation", "yield", "arch"} <= ids

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            get_experiment("nope")

    def test_fig4_experiment_rows(self):
        result = get_experiment("fig4").run(True)
        assert all(row["implements"] for row in result.rows)
        by_method = {row["method"]: row for row in result.rows}
        assert by_method["paper Fig. 4 (hand)"]["area"] == 6
        assert by_method["Fig. 5 formula [2]"]["area"] >= 6

    def test_fig1_experiment(self):
        result = get_experiment("fig1").run(True)
        assert len(result.rows) == 3
        assert all(row["implements_xnor2"] for row in result.rows)

    def test_bist_experiment_full_coverage(self):
        result = get_experiment("bist").run(True)
        assert all(row["coverage"] == 1.0 for row in result.rows)
        assert all(row["configs"] < row["naive_configs"] for row in result.rows)

    def test_bisd_experiment_logarithmic(self):
        result = get_experiment("bisd").run(True)
        for row in result.rows:
            assert row["accuracy"] == 1.0
            assert row["configs"] == row["log2(resources)"] + 2

    def test_render_contains_notes(self):
        result = get_experiment("fig1").run(True)
        assert "notes:" in result.render()

    def test_metrics_experiment_styles(self):
        result = get_experiment("metrics").run(True)
        styles = {row["style"] for row in result.rows}
        assert styles == {"diode", "fet", "lattice"}

    def test_expressiveness_experiment(self):
        result = get_experiment("expressiveness").run(True)
        full = next(row for row in result.rows if row["shape"] == (2, 2))
        assert full["coverage"] == 1.0

    def test_latticemap_experiment(self):
        result = get_experiment("latticemap").run(True)
        assert result.rows[0]["success_rate"] == 1.0

    def test_tmr_experiment(self):
        result = get_experiment("tmr").run(True)
        numeric = [row for row in result.rows
                   if isinstance(row["upset_rate"], float)]
        assert numeric[0]["simplex_correct"] == 1.0


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "bism" in out

    def test_run_fig4(self, capsys):
        assert cli_main(["run", "fig4", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4" in out and "3x2" in out

    def test_bench_listing_and_detail(self, capsys):
        assert cli_main(["bench"]) == 0
        assert "xnor2" in capsys.readouterr().out
        assert cli_main(["bench", "xnor2"]) == 0
        out = capsys.readouterr().out
        assert "products = 2" in out

    def test_synth_all_styles(self, capsys):
        assert cli_main(["synth", "x1 x2 + x1' x2'"]) == 0
        out = capsys.readouterr().out
        assert "diode array 2 x 5" in out
        assert "FET array 4 x 4" in out
        assert "lattice 2 x 2" in out

    def test_synth_optimal(self, capsys):
        assert cli_main(["synth", "x1 + x2", "--style", "optimal"]) == 0
        out = capsys.readouterr().out
        assert "optimal lattice 1 x 2" in out
        assert "proved: True" in out


class TestCliErrorPaths:
    """Exit-code contracts: 2 for bad requests, 0 for tiny happy paths."""

    # -- faultsim ---------------------------------------------------------
    def test_faultsim_negative_density(self, capsys):
        code = cli_main(["faultsim", "--n", "8", "--densities", "-0.1",
                         "--trials", "5", "--no-cache"])
        assert code == 2
        assert "densities" in capsys.readouterr().err

    def test_faultsim_zero_trials(self, capsys):
        code = cli_main(["faultsim", "--n", "8", "--densities", "0.05",
                         "--trials", "0", "--no-cache"])
        assert code == 2
        assert "trials" in capsys.readouterr().err

    def test_faultsim_exact_beyond_validated_regime(self, capsys):
        code = cli_main(["faultsim", "--n", "16", "--densities", "0.05",
                         "--strategies", "exact", "--trials", "5",
                         "--no-cache"])
        assert code == 2
        assert "exact" in capsys.readouterr().err

    def test_faultsim_bad_stuck_open_fraction(self, capsys):
        code = cli_main(["faultsim", "--n", "8", "--densities", "0.05",
                         "--stuck-open-fraction", "1.5", "--trials", "5",
                         "--no-cache"])
        assert code == 2
        assert "stuck_open_fraction" in capsys.readouterr().err

    # -- varsweep ---------------------------------------------------------
    def test_varsweep_unknown_bench(self, capsys):
        code = cli_main(["varsweep", "--bench", "no-such-bench",
                         "--trials", "5", "--no-cache"])
        assert code == 2
        assert "no benchmark named" in capsys.readouterr().err

    def test_varsweep_negative_sigma(self, capsys):
        code = cli_main(["varsweep", "--bench", "xnor2", "--sigmas",
                         "-0.5", "--trials", "5", "--no-cache"])
        assert code == 2
        assert "sigmas" in capsys.readouterr().err

    def test_varsweep_crossbar_smaller_than_lattice(self, capsys):
        code = cli_main(["varsweep", "--bench", "xnor2",
                         "--crossbar-rows", "1", "--crossbar-cols", "1",
                         "--trials", "5", "--no-cache"])
        assert code == 2
        assert "crossbar" in capsys.readouterr().err

    def test_varsweep_bad_nominal(self, capsys):
        code = cli_main(["varsweep", "--bench", "xnor2", "--nominal",
                         "0.0", "--trials", "5", "--no-cache"])
        assert code == 2
        assert "nominal" in capsys.readouterr().err

    def test_varsweep_happy_path_exit_code(self, capsys):
        code = cli_main(["varsweep", "--bench", "xnor2", "--sigmas",
                         "0.3", "--trials", "10", "--batch-size", "5",
                         "--crossbar-rows", "8", "--crossbar-cols", "8",
                         "--no-cache"])
        assert code == 0
        assert "varsim campaign" in capsys.readouterr().out

    # -- batch ------------------------------------------------------------
    def test_batch_bad_defect_density(self, capsys):
        code = cli_main(["batch", "--no-cache", "--max-vars", "3",
                         "--no-optimal", "--defect-density", "-0.2"])
        assert code == 2
        assert "defect_density" in capsys.readouterr().err

    def test_batch_max_vars_zero_matches_nothing(self, capsys):
        code = cli_main(["batch", "--no-cache", "--max-vars", "0"])
        assert code == 2
        assert "no benchmarks" in capsys.readouterr().err
