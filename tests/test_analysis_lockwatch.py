"""The runtime lock sanitizer (``NANOXBAR_LOCKCHECK=1``).

These tests drive *private* :class:`LockWatch` instances so that a
deliberately seeded hazard never pollutes the process-global watcher the
suite itself may be running under (``tests/conftest.py``).
"""

from __future__ import annotations

import queue
import threading

import pytest

from repro.analysis.lockwatch import (
    LockWatch,
    active_watcher,
    enabled_by_env,
    install,
    install_from_env,
    uninstall,
)


@pytest.fixture
def watch():
    return LockWatch()


# ------------------------------------------------------- order inversions

def test_deliberate_lock_order_inversion_is_detected(watch):
    a = watch.make_lock("A")
    b = watch.make_lock("B")
    with a:
        with b:
            pass
    # Same thread, opposite order: a classic ABBA deadlock seed.  No
    # actual deadlock happens (single thread), which is exactly why the
    # sanitizer tracks the order *graph* instead of waiting for a hang.
    with b:
        with a:
            pass
    violations = watch.violations()
    assert len(violations) == 1
    assert violations[0].kind == "lock-order-inversion"
    assert set(violations[0].locks) == {"A", "B"}
    assert len(violations[0].sites) == 2  # witness for each order


def test_consistent_order_is_silent(watch):
    a = watch.make_lock("A")
    b = watch.make_lock("B")
    for _ in range(3):
        with a:
            with b:
                pass
    assert watch.violations() == []


def test_cross_thread_inversion_is_detected(watch):
    a = watch.make_lock("A")
    b = watch.make_lock("B")

    def worker_ab():
        with a:
            with b:
                pass

    def worker_ba():
        with b:
            with a:
                pass

    # Run the two orders strictly one after the other: never deadlocks,
    # but the order graph still gains edges A->B and B->A.
    for target in (worker_ab, worker_ba):
        thread = threading.Thread(target=target)
        thread.start()
        thread.join()
    kinds = [v.kind for v in watch.violations()]
    assert "lock-order-inversion" in kinds


def test_rlock_reentrancy_is_not_an_inversion(watch):
    r = watch.make_rlock("R")
    inner = watch.make_lock("inner")
    with r:
        with r:          # reentrant: same lock, not a new edge
            with inner:
                pass
    with r:
        with inner:
            pass
    assert watch.violations() == []


def test_clear_resets_violations_and_edges(watch):
    a = watch.make_lock("A")
    b = watch.make_lock("B")
    with a:
        with b:
            pass
    with b:
        with a:
            pass
    assert watch.violations()
    watch.clear()
    assert watch.violations() == []


# ----------------------------------------------------------- fork safety

def test_fork_while_held_by_other_thread_is_detected(watch):
    lock = watch.make_lock("campaign-state")
    holding = threading.Event()
    release = threading.Event()

    def holder():
        with lock:
            holding.set()
            release.wait(5)

    thread = threading.Thread(target=holder)
    thread.start()
    try:
        assert holding.wait(5)
        watch.check_fork_safety("test fork boundary")
    finally:
        release.set()
        thread.join()
    violations = watch.violations()
    assert len(violations) == 1
    assert violations[0].kind == "fork-while-held"
    assert "campaign-state" in violations[0].locks
    assert "test fork boundary" in violations[0].message


def test_fork_check_ignores_locks_held_by_the_forking_thread(watch):
    lock = watch.make_lock("mine")
    with lock:
        # The calling thread's own locks survive fork just fine (the
        # child *is* this thread); only other threads' locks are stale.
        watch.check_fork_safety("test fork boundary")
    assert watch.violations() == []


# -------------------------------------------------- install() integration

def test_install_patches_threading_factories():
    assert active_watcher() is None or True  # suite may run with the flag
    previously = active_watcher()
    if previously is not None:
        pytest.skip("process-global watcher already installed by conftest")
    watch = install()
    try:
        assert active_watcher() is watch
        lock = threading.Lock()
        with lock:
            pass
        assert lock.__class__.__name__ == "_WatchedLock"
        rlock = threading.RLock()
        with rlock:
            with rlock:
                pass
        # Instrumented primitives must stay drop-in for the stdlib:
        # Condition and Queue build on Lock/RLock internals.
        cond = threading.Condition()
        with cond:
            cond.notify_all()
        q = queue.Queue()
        q.put(1)
        assert q.get() == 1
        assert watch.violations() == []
    finally:
        uninstall()
    assert active_watcher() is None
    assert threading.Lock().__class__.__name__ != "_WatchedLock"


def test_install_from_env_respects_the_flag(monkeypatch):
    if active_watcher() is not None:
        pytest.skip("process-global watcher already installed by conftest")
    monkeypatch.delenv("NANOXBAR_LOCKCHECK", raising=False)
    assert not enabled_by_env()
    assert install_from_env() is None
    monkeypatch.setenv("NANOXBAR_LOCKCHECK", "0")
    assert not enabled_by_env()
    monkeypatch.setenv("NANOXBAR_LOCKCHECK", "1")
    assert enabled_by_env()
    watch = install_from_env()
    try:
        assert watch is not None and active_watcher() is watch
    finally:
        uninstall()


def test_condition_wait_keeps_held_stack_truthful():
    # Condition.wait() releases the underlying RLock via _release_save and
    # re-acquires via _acquire_restore; the watched RLock must mirror that,
    # or every post-wait acquisition would look like a held-lock edge.
    if active_watcher() is not None:
        pytest.skip("process-global watcher already installed by conftest")
    watch = install()
    try:
        cond = threading.Condition()
        done = threading.Event()

        def waiter():
            with cond:
                cond.wait(timeout=5)
            done.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        while not thread.is_alive():
            pass
        with cond:
            cond.notify_all()
        assert done.wait(5)
        thread.join()
        assert watch.violations() == []
    finally:
        uninstall()
