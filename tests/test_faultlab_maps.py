"""Tests for faultlab's batched defect maps and generators."""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.faultlab import (
    OK,
    STUCK_CLOSED,
    STUCK_OPEN,
    DefectBatch,
    bernoulli_defect_batch,
    clustered_defect_batch,
    spawn_streams,
)
from repro.reliability import (
    CrosspointState,
    clustered_defect_map,
    perfect_map,
    random_defect_map,
)


class TestDefectBatch:
    def test_validation(self):
        with pytest.raises(ValueError):
            DefectBatch(np.zeros((2, 3), dtype=np.uint8))
        with pytest.raises(ValueError):
            DefectBatch(np.zeros((2, 3, 3), dtype=np.int64))
        bad = np.zeros((1, 2, 2), dtype=np.uint8)
        bad[0, 0, 0] = 7
        with pytest.raises(ValueError):
            DefectBatch(bad)

    def test_round_trip_through_scalar_maps(self):
        rng = random.Random(3)
        maps = [random_defect_map(5, 4, d, rng)
                for d in (0.0, 0.1, 0.3, 0.8)]
        batch = DefectBatch.from_defect_maps(maps)
        assert (batch.trials, batch.rows, batch.cols) == (4, 5, 4)
        for trial, original in enumerate(maps):
            assert batch.to_defect_map(trial) == original
        assert list(batch.iter_defect_maps()) == maps

    def test_from_maps_rejects_mixed_shapes(self):
        with pytest.raises(ValueError):
            DefectBatch.from_defect_maps([perfect_map(3, 3),
                                          perfect_map(3, 4)])
        with pytest.raises(ValueError):
            DefectBatch.from_defect_maps([])

    def test_densities_match_scalar(self):
        rng = random.Random(5)
        maps = [random_defect_map(6, 6, 0.2, rng) for _ in range(8)]
        batch = DefectBatch.from_defect_maps(maps)
        assert np.allclose(batch.densities(),
                           [m.density for m in maps])

    def test_packed_bits_round_trip(self):
        rng = random.Random(9)
        batch = DefectBatch.from_defect_maps(
            [random_defect_map(5, 7, 0.3, rng) for _ in range(3)])
        packed = batch.packed_bits()
        unpacked = np.unpackbits(packed, axis=1)[:, :5 * 7] \
            .reshape(3, 5, 7).astype(bool)
        assert (unpacked == batch.defective()).all()


class TestSpawnStreams:
    def test_deterministic_and_independent(self):
        a = spawn_streams(42, 3)
        b = spawn_streams(42, 3)
        draws_a = [g.random(4).tolist() for g in a]
        draws_b = [g.random(4).tolist() for g in b]
        assert draws_a == draws_b
        # distinct children produce distinct streams
        assert draws_a[0] != draws_a[1] != draws_a[2]
        assert spawn_streams(43, 1)[0].random(4).tolist() != draws_a[0]


class TestBernoulliBatch:
    def test_validation(self):
        gen = np.random.default_rng(0)
        with pytest.raises(ValueError):
            bernoulli_defect_batch(1, 2, 2, 1.5, gen)
        with pytest.raises(ValueError):
            bernoulli_defect_batch(1, 2, 2, 0.1, gen,
                                   stuck_open_fraction=-0.1)

    def test_extremes(self):
        gen = np.random.default_rng(0)
        assert (bernoulli_defect_batch(4, 5, 5, 0.0, gen).states == OK).all()
        full = bernoulli_defect_batch(4, 5, 5, 1.0, gen,
                                      stuck_open_fraction=1.0)
        assert (full.states == STUCK_OPEN).all()
        closed = bernoulli_defect_batch(4, 5, 5, 1.0, gen,
                                        stuck_open_fraction=0.0)
        assert (closed.states == STUCK_CLOSED).all()

    def test_statistics_match_scalar_reference(self):
        """Same parameters -> same defect rate and open/closed split as
        the scalar ``random_defect_map`` ensemble (within MC noise)."""
        trials, n, density, sof = 300, 16, 0.1, 0.8
        gen = np.random.default_rng(7)
        batch = bernoulli_defect_batch(trials, n, n, density, gen, sof)
        rng = random.Random(7)
        scalar = [random_defect_map(n, n, density, rng, sof)
                  for _ in range(trials)]
        vec_density = float(batch.densities().mean())
        ref_density = sum(m.density for m in scalar) / trials
        assert abs(vec_density - ref_density) < 0.01
        vec_defects = batch.defective().sum()
        vec_open = (batch.states == STUCK_OPEN).sum() / vec_defects
        ref_counts = [
            sum(1 for s in m.defects.values()
                if s is CrosspointState.STUCK_OPEN)
            for m in scalar
        ]
        ref_open = sum(ref_counts) / sum(m.num_defects for m in scalar)
        assert abs(float(vec_open) - ref_open) < 0.03

    def test_seeded_reproducibility(self):
        a = bernoulli_defect_batch(5, 8, 8, 0.2, np.random.default_rng(11))
        b = bernoulli_defect_batch(5, 8, 8, 0.2, np.random.default_rng(11))
        assert (a.states == b.states).all()


class TestClusteredBatch:
    def test_statistics_match_scalar_reference(self):
        trials, n, density = 250, 16, 0.1
        gen = np.random.default_rng(13)
        batch = clustered_defect_batch(trials, n, n, density, gen)
        scalar = [clustered_defect_map(n, n, density, random.Random(i))
                  for i in range(trials)]
        vec_density = float(batch.densities().mean())
        ref_density = sum(m.density for m in scalar) / trials
        # Both lose the same mass to out-of-bounds / duplicate attempts.
        assert abs(vec_density - ref_density) < 0.02
        # Clustering: defects bunch, so per-map occupied-row spread is
        # narrower than the Bernoulli equivalent.
        bern = bernoulli_defect_batch(trials, n, n, density,
                                      np.random.default_rng(13))
        clustered_rows = (batch.defective().any(axis=2).sum(axis=1)).mean()
        bern_rows = (bern.defective().any(axis=2).sum(axis=1)).mean()
        assert clustered_rows < bern_rows

    def test_budget_respected(self):
        trials, n, density = 50, 12, 0.2
        batch = clustered_defect_batch(trials, n, n, density,
                                       np.random.default_rng(3))
        budget = round(density * n * n)
        per_trial = batch.defective().sum(axis=(1, 2))
        assert (per_trial <= budget).all()

    def test_zero_density(self):
        batch = clustered_defect_batch(4, 8, 8, 0.0,
                                       np.random.default_rng(0))
        assert (batch.states == OK).all()

    def test_small_budget_regime_matches_scalar(self):
        """budget=1 (N=8, d=0.02): the attempt cap must not starve the
        batch of the retry attempts the scalar generator gets."""
        trials, n, density = 4000, 8, 0.02
        vec = clustered_defect_batch(trials, n, n, density,
                                     np.random.default_rng(1))
        ref = np.mean([clustered_defect_map(n, n, density,
                                            random.Random(i)).density
                       for i in range(trials)])
        assert abs(float(vec.densities().mean()) - ref) < 0.15 * ref + 1e-4


@settings(max_examples=30, deadline=None)
@given(
    trials=st.integers(min_value=1, max_value=5),
    rows=st.integers(min_value=1, max_value=8),
    cols=st.integers(min_value=1, max_value=8),
    density=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_property_batch_state_codes_round_trip(trials, rows, cols, density,
                                               seed):
    """Any generated batch survives the scalar-map round trip unchanged."""
    gen = np.random.default_rng(seed)
    batch = bernoulli_defect_batch(trials, rows, cols, density, gen)
    rebuilt = DefectBatch.from_defect_maps(list(batch.iter_defect_maps()))
    assert (rebuilt.states == batch.states).all()
