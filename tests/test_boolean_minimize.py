"""Tests for two-level minimization: QM primes, exact covering, espresso loop."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.boolean import (
    Cover,
    Cube,
    TruthTable,
    exact_minimize,
    heuristic_minimize,
    isop,
    minimize,
    prime_implicants,
    verify_cover,
)


def tables(n=4):
    return st.integers(min_value=0, max_value=(1 << (1 << n)) - 1).map(
        lambda bits: TruthTable.from_bits(n, bits)
    )


def brute_force_min_products(t: TruthTable) -> int:
    """Minimum cover cardinality by exhaustive search over prime subsets."""
    primes = prime_implicants(t)
    target = set(t.minterms())
    if not target:
        return 0
    from itertools import combinations

    for k in range(1, len(primes) + 1):
        for subset in combinations(primes, k):
            covered = set()
            for cube in subset:
                covered |= set(cube.minterms())
            if target <= covered:
                return k
    raise AssertionError("primes cannot cover the function")


class TestPrimeImplicants:
    def test_known_example(self):
        # f = m(0,1,2,5,6,7) over 3 vars: classic QM teaching example with
        # primes: x0'x1', x0x2', x1'x2... let's check via semantics instead.
        t = TruthTable.from_minterms(3, [0, 1, 2, 5, 6, 7])
        primes = prime_implicants(t)
        for p in primes:
            # every prime is an implicant
            assert all(t.evaluate(m) for m in p.minterms())
            # and maximal: removing any literal escapes the on-set
            for lit in p.literals():
                bigger = p.remove_variable(lit.var)
                assert not all(t.evaluate(m) for m in bigger.minterms())

    def test_tautology_prime_is_universe(self):
        t = TruthTable.constant(3, True)
        assert prime_implicants(t) == [Cube.universe(3)]

    def test_contradiction_has_no_primes(self):
        assert prime_implicants(TruthTable.constant(3, False)) == []

    def test_dont_cares_extend_primes(self):
        on = TruthTable.from_minterms(2, [3])
        dc = TruthTable.from_minterms(2, [1])
        primes = prime_implicants(on, dc)
        # with dc at 01, x1 (i.e. "-1" in bit order var0=1) becomes a prime
        assert Cube.from_string("1-") in primes

    @given(tables())
    @settings(max_examples=60)
    def test_primes_are_maximal_implicants(self, t):
        primes = prime_implicants(t)
        for p in primes:
            assert all(t.evaluate(m) for m in p.minterms())
            for lit in p.literals():
                bigger = p.remove_variable(lit.var)
                assert not all(t.evaluate(m) for m in bigger.minterms())


class TestExactMinimize:
    def test_xor_needs_two_products(self):
        t = TruthTable.from_minterms(2, [1, 2])
        cover = exact_minimize(t)
        assert cover.num_products == 2
        assert verify_cover(cover, t)

    def test_parity_n_needs_2_to_nminus1(self):
        for n in (2, 3, 4):
            t = TruthTable.from_callable(n, lambda m: bin(m).count("1") % 2 == 1)
            cover = exact_minimize(t)
            assert cover.num_products == 1 << (n - 1)
            assert verify_cover(cover, t)

    def test_constants(self):
        assert exact_minimize(TruthTable.constant(3, False)).num_products == 0
        taut = exact_minimize(TruthTable.constant(3, True))
        assert taut.num_products == 1 and taut[0].num_literals == 0

    def test_dont_cares_reduce_cover(self):
        # on = {3}, dc = {1, 2}: a single literal suffices
        on = TruthTable.from_minterms(2, [3])
        dc = TruthTable.from_minterms(2, [1])
        cover = exact_minimize(on, dc)
        assert cover.num_products == 1
        assert cover[0].num_literals == 1
        assert verify_cover(cover, on, dc)

    def test_all_dc_gives_empty_cover(self):
        on = TruthTable.constant(2, False)
        dc = TruthTable.constant(2, True)
        assert exact_minimize(on, dc).num_products == 0

    @given(tables(3))
    @settings(max_examples=40)
    def test_matches_brute_force_cardinality(self, t):
        cover = exact_minimize(t)
        assert verify_cover(cover, t)
        assert cover.num_products == brute_force_min_products(t)

    @given(tables(4))
    @settings(max_examples=30)
    def test_exact_is_valid_and_irredundant(self, t):
        cover = exact_minimize(t)
        assert verify_cover(cover, t)
        for i in range(len(cover)):
            assert not cover.without_index(i).equivalent(cover) or t.is_contradiction()


class TestIsop:
    @given(tables())
    @settings(max_examples=60)
    def test_isop_covers_exactly(self, t):
        cover = isop(t)
        assert cover.to_truth_table() == t

    @given(tables(3))
    @settings(max_examples=40)
    def test_isop_with_dc_stays_in_interval(self, t):
        dc = TruthTable.from_callable(3, lambda m: m % 3 == 0)
        on = t.difference(dc)
        cover = isop(on, dc)
        sem = cover.to_truth_table()
        assert on.difference(dc).implies(sem)
        assert sem.implies(on | dc)

    def test_isop_irredundant_on_sample(self):
        t = TruthTable.from_minterms(3, [1, 3, 5, 7, 6])
        cover = isop(t)
        for i in range(len(cover)):
            assert not cover.without_index(i).to_truth_table() == t


class TestHeuristic:
    @given(tables())
    @settings(max_examples=40, deadline=None)
    def test_heuristic_valid(self, t):
        cover = heuristic_minimize(t)
        assert verify_cover(cover, t)

    @given(tables(3))
    @settings(max_examples=25, deadline=None)
    def test_heuristic_close_to_exact(self, t):
        h = heuristic_minimize(t)
        e = exact_minimize(t)
        assert h.num_products <= e.num_products + 2

    def test_heuristic_on_majority5(self):
        t = TruthTable.from_callable(5, lambda m: bin(m).count("1") >= 3)
        cover = heuristic_minimize(t)
        assert verify_cover(cover, t)
        assert cover.num_products == 10  # C(5,3) products of 3 literals


class TestMinimizeDispatch:
    def test_auto_small_uses_exact(self):
        t = TruthTable.from_minterms(2, [1, 2])
        assert minimize(t).num_products == 2

    def test_methods_agree_semantically(self):
        t = TruthTable.from_minterms(4, [0, 2, 5, 7, 8, 10, 13, 15])
        for method in ("exact", "heuristic", "isop"):
            cover = minimize(t, method=method)
            assert cover.to_truth_table() == t

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError):
            minimize(TruthTable.constant(2, True), method="magic")

    def test_verify_cover_rejects_bad_cover(self):
        t = TruthTable.from_minterms(2, [1, 2])
        bad = Cover.from_strings(["1-"])
        assert not verify_cover(bad, t)
