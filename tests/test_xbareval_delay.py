"""Property suite for the batched delay kernel (repro.xbareval.delay).

The batched Bellman-Ford relaxation must agree with the scalar Dijkstra
reference :func:`repro.reliability.variation.best_path_delay` on every
grid — conducting and non-conducting alike (the scalar ``None`` reads as
``np.inf``), to float tolerance (equal-cost path ties may be broken
differently, so the agreement bound is relative, not bit-exact).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.boolean.cube import Literal
from repro.crossbar.lattice import Lattice
from repro.reliability.variation import (
    VariationMap,
    best_path_delay,
    lattice_critical_delay,
)
from repro.xbareval import (
    best_path_delay_batch,
    lattice_critical_delay_batch,
    onset_critical_delay_batch,
)

RTOL = 1e-9


@st.composite
def weighted_grid_batches(draw):
    batch = draw(st.integers(1, 5))
    rows = draw(st.integers(1, 6))
    cols = draw(st.integers(1, 6))
    cells = batch * rows * cols
    bits = draw(st.lists(st.booleans(), min_size=cells, max_size=cells))
    weights = draw(st.lists(
        st.floats(min_value=0.05, max_value=50.0,
                  allow_nan=False, allow_infinity=False),
        min_size=cells, max_size=cells))
    conduction = np.array(bits, dtype=bool).reshape(batch, rows, cols)
    resistance = np.array(weights).reshape(batch, rows, cols)
    return conduction, resistance


@st.composite
def small_lattices(draw, max_vars: int = 3, max_side: int = 3):
    n = draw(st.integers(1, max_vars))
    rows = draw(st.integers(1, max_side))
    cols = draw(st.integers(1, max_side))
    site = st.one_of(
        st.just(True),
        st.just(False),
        st.builds(Literal, st.integers(0, n - 1), st.booleans()),
    )
    sites = draw(st.lists(st.lists(site, min_size=cols, max_size=cols),
                          min_size=rows, max_size=rows))
    return Lattice(n, sites)


def _assert_matches_scalar(got: np.ndarray, conduction: np.ndarray,
                           resistance: np.ndarray) -> None:
    for b in range(conduction.shape[0]):
        want = best_path_delay(conduction[b].tolist(), resistance[b])
        if want is None:
            assert np.isinf(got[b])
        else:
            assert np.isclose(got[b], want, rtol=RTOL)


@settings(max_examples=150, deadline=None)
@given(weighted_grid_batches())
def test_best_path_delay_batch_matches_dijkstra(case):
    conduction, resistance = case
    got = best_path_delay_batch(conduction, resistance)
    _assert_matches_scalar(got, conduction, resistance)


@settings(max_examples=60, deadline=None)
@given(weighted_grid_batches())
def test_best_path_delay_batch_broadcast_resistance(case):
    """A single shared (R, C) map must broadcast across the batch."""
    conduction, resistance = case
    shared = resistance[0]
    got = best_path_delay_batch(conduction, shared)
    full = np.broadcast_to(shared, conduction.shape)
    _assert_matches_scalar(got, conduction, full)


def test_best_path_delay_batch_non_conducting_grid():
    grids = np.zeros((3, 4, 4), dtype=bool)
    grids[1] = True          # one fully conducting grid in the middle
    res = np.full((3, 4, 4), 2.0)
    got = best_path_delay_batch(grids, res)
    assert np.isinf(got[0]) and np.isinf(got[2])
    assert np.isclose(got[1], 8.0)   # straight 4-site column of cost 2


def test_best_path_delay_batch_rejects_bad_inputs():
    with pytest.raises(ValueError):
        best_path_delay_batch(np.ones((2, 2), dtype=bool), np.ones((2, 2)))
    with pytest.raises(ValueError):
        best_path_delay_batch(np.ones((1, 2, 2), dtype=bool),
                              np.zeros((1, 2, 2)))


@settings(max_examples=60, deadline=None)
@given(small_lattices(), st.integers(0, 2 ** 32 - 1))
def test_lattice_critical_delay_batch_matches_scalar(lattice, seed):
    table = lattice.to_truth_table()
    gen = np.random.default_rng(seed)
    ensemble = gen.lognormal(0.0, 0.4,
                             size=(4, lattice.rows, lattice.cols))
    if table.count_ones() == 0:
        with pytest.raises(ValueError):
            lattice_critical_delay_batch(lattice, ensemble, table)
        return
    got = lattice_critical_delay_batch(lattice, ensemble, table)
    for t in range(ensemble.shape[0]):
        want = lattice_critical_delay(lattice, VariationMap(ensemble[t]),
                                      table)
        assert np.isclose(got[t], want, rtol=RTOL)


def test_critical_delay_chunked_expansion_matches_unchunked(monkeypatch):
    """Chunking over trials must not change any delay."""
    from repro.xbareval import delay as delay_module

    lattice = Lattice(2, [[Literal(0, True), Literal(1, True)],
                          [Literal(1, False), Literal(0, False)]])
    gen = np.random.default_rng(3)
    ensemble = gen.lognormal(0.0, 0.5, size=(13, 2, 2))
    full = lattice_critical_delay_batch(lattice, ensemble)
    monkeypatch.setattr(delay_module, "CHUNK_GRIDS", 4)
    chunked = delay_module.lattice_critical_delay_batch(lattice, ensemble)
    assert np.array_equal(full, chunked)


def test_constant_zero_lattice_raises_everywhere():
    """Satellite fix: constant-0 must raise, not read as zero delay."""
    lattice = Lattice(1, [[False]])
    variation = VariationMap(np.ones((1, 1)))
    with pytest.raises(ValueError, match="constant-0"):
        lattice_critical_delay(lattice, variation)
    with pytest.raises(ValueError, match="constant-0"):
        lattice_critical_delay_batch(lattice, np.ones((2, 1, 1)))
    with pytest.raises(ValueError, match="constant-0"):
        onset_critical_delay_batch(lattice, np.array([], dtype=np.int64),
                                   np.ones((2, 1, 1)))
