"""Cross-representation property tests.

The substrate offers five representations of the same function (truth
table, cover, BDD, expression, synthesized arrays); these properties pin
their mutual consistency — the invariants everything else in the package
silently relies on.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.arch import shared_adder_report, synthesize_adder_shared, adder_reference
from repro.boolean import (
    Bdd,
    BooleanFunction,
    Cover,
    TruthTable,
    exact_minimize,
    isop,
    minimize,
    npn_canonical,
    verify_cover,
)
from repro.synthesis import (
    fold_lattice,
    synthesize_diode,
    synthesize_fet,
    synthesize_lattice_dual,
)


def tables(n=4):
    return st.integers(min_value=0, max_value=(1 << (1 << n)) - 1).map(
        lambda bits: TruthTable.from_bits(n, bits)
    )


def nonconstant(n=4):
    return st.integers(min_value=1, max_value=(1 << (1 << n)) - 2).map(
        lambda bits: TruthTable.from_bits(n, bits)
    )


class TestRepresentationsAgree:
    @given(tables())
    @settings(max_examples=40, deadline=None)
    def test_cover_bdd_table_roundtrip(self, t):
        cover = Cover.from_truth_table(t)
        manager = Bdd(t.n)
        via_bdd = manager.to_truth_table(manager.from_cover(cover))
        assert via_bdd == t

    @given(tables())
    @settings(max_examples=30, deadline=None)
    def test_minimized_expression_reparses(self, t):
        cover = minimize(t)
        f = BooleanFunction.from_truth_table(t)
        if cover.num_products == 0:
            return
        g = BooleanFunction.from_expression(
            cover.to_expression(f.names), names=f.names)
        assert g.on == t

    @given(nonconstant())
    @settings(max_examples=20, deadline=None)
    def test_all_arrays_agree_with_each_other(self, t):
        diode = synthesize_diode(t)
        fet = synthesize_fet(t)
        lattice = synthesize_lattice_dual(t)
        for m in range(1 << t.n):
            expected = t.evaluate(m)
            assert diode.evaluate(m) == expected
            assert fet.evaluate(m) == expected
            assert lattice.evaluate(m) == expected

    @given(tables(3))
    @settings(max_examples=30, deadline=None)
    def test_minimizers_agree_semantically(self, t):
        covers = [exact_minimize(t), isop(t), minimize(t, method="heuristic")]
        for cover in covers:
            assert verify_cover(cover, t)
        assert covers[0].to_truth_table() == covers[1].to_truth_table()

    @given(nonconstant(3))
    @settings(max_examples=20, deadline=None)
    def test_npn_transform_preserves_lattice_area_class(self, t):
        # synthesis cost is NPN-input-invariant: the canonical form's folded
        # lattice area never exceeds the original's by more than the output
        # complementation effect (dual swap) allows in either direction
        canonical, _ = npn_canonical(t)
        area_t = fold_lattice(synthesize_lattice_dual(t), t).area
        area_c = fold_lattice(synthesize_lattice_dual(canonical), canonical).area
        # complementing the output swaps f and f^D (transposed lattice), so
        # the two areas agree up to transposition of the pre-fold shape
        assert 0 < area_c <= 4 * area_t
        assert 0 < area_t <= 4 * area_c


class TestSharedAdder:
    def test_shared_adder_implements_reference(self):
        for width in (1, 2):
            plane = synthesize_adder_shared(width)
            reference = adder_reference(width)
            for m in range(1 << (2 * width)):
                assert plane.evaluate(m) == reference(m)

    def test_shared_adder_report_shapes(self):
        report = shared_adder_report(2)
        assert report["shared_rows"] <= report["independent_rows"]
        assert report["shared_area"] > 0

    def test_shared_adder_with_carry(self):
        plane = synthesize_adder_shared(1, with_carry_in=True)
        reference = adder_reference(1, with_carry_in=True)
        for m in range(8):
            assert plane.evaluate(m) == reference(m)


class TestDeterminism:
    """Same inputs, same outputs — the experiment tables must be stable."""

    def test_synthesis_is_deterministic(self):
        t = TruthTable.from_minterms(4, [1, 3, 7, 9, 14])
        first = synthesize_lattice_dual(t)
        second = synthesize_lattice_dual(t)
        assert first == second

    def test_experiments_are_seeded(self):
        from repro.eval import get_experiment

        a = get_experiment("bism").run(True)
        b = get_experiment("bism").run(True)
        assert a.rows == b.rows

    def test_mapping_sweeps_reproduce_with_same_seed(self):
        from repro.reliability import bism_density_sweep, as_program

        program = as_program([[True, False], [False, True]])
        one = bism_density_sweep(program, 6, 6, [0.1], 5, random.Random(3))
        two = bism_density_sweep(program, 6, 6, [0.1], 5, random.Random(3))
        assert one == two
