"""Tests for dual-function helpers and PLA I/O."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.boolean import (
    BooleanFunction,
    Cover,
    TruthTable,
    check_duality_lemma,
    cover_to_pla,
    dual_cover,
    is_self_dual,
    minimized_pair,
    parse_pla,
    shared_literal,
    verify_cover,
    write_pla,
)
from repro.boolean.pla import PlaError


def tables(n=4):
    return st.integers(min_value=0, max_value=(1 << (1 << n)) - 1).map(
        lambda bits: TruthTable.from_bits(n, bits)
    )


class TestDual:
    @given(tables())
    @settings(max_examples=40)
    def test_dual_cover_implements_dual(self, t):
        cover = dual_cover(Cover.from_truth_table(t) if t.count_ones() else Cover.empty(4))
        assert cover.to_truth_table() == t.dual()

    @given(tables())
    @settings(max_examples=40, deadline=None)
    def test_duality_lemma_holds_for_minimized_pair(self, t):
        f_cover, d_cover = minimized_pair(t)
        assert check_duality_lemma(f_cover, d_cover)
        for p in f_cover:
            for q in d_cover:
                lit = shared_literal(p, q)
                assert lit in p.literal_set() and lit in q.literal_set()

    def test_shared_literal_raises_for_disjoint(self):
        from repro.boolean import Cube

        with pytest.raises(ValueError):
            shared_literal(Cube.from_string("1-"), Cube.from_string("-1").complement_literals())

    def test_self_dual_detection(self):
        maj = TruthTable.from_callable(3, lambda m: bin(m).count("1") >= 2)
        assert is_self_dual(maj)
        assert not is_self_dual(TruthTable.variable(3, 0) & TruthTable.variable(3, 1))


class TestPla:
    SAMPLE = """\
# a comment
.i 3
.o 2
.ilb a b c
.ob f g
.p 3
1-0 10
011 11
--1 0-
.e
"""

    def test_parse_roundtrip(self):
        pla = parse_pla(self.SAMPLE)
        assert pla.num_inputs == 3 and pla.num_outputs == 2
        assert pla.input_names == ["a", "b", "c"]
        again = parse_pla(write_pla(pla))
        assert again.rows == pla.rows

    def test_output_cover_on_and_dc(self):
        pla = parse_pla(self.SAMPLE)
        on, dc = pla.output_cover(1)
        assert len(on) == 1  # row 011 has g=1
        assert len(dc) == 1  # row --1 has g=-

    def test_single_output_requires_one(self):
        pla = parse_pla(self.SAMPLE)
        with pytest.raises(PlaError):
            pla.single_output()

    def test_compact_row_format(self):
        pla = parse_pla(".i 2\n.o 1\n111\n.e\n")
        on, _ = pla.output_cover(0)
        assert len(on) == 1 and str(on[0]) == "11"

    def test_missing_declarations_raise(self):
        with pytest.raises(PlaError):
            parse_pla("1-0 1\n")

    def test_bad_row_length_raises(self):
        with pytest.raises(PlaError):
            parse_pla(".i 3\n.o 1\n1- 1\n.e\n")

    def test_cover_to_pla_roundtrip(self):
        cover = Cover.from_strings(["1-0", "011"])
        pla = cover_to_pla(cover)
        on, dc = parse_pla(write_pla(pla)).output_cover(0)
        assert on.to_truth_table() == cover.to_truth_table()

    def test_boolean_function_from_pla(self):
        text = ".i 2\n.o 1\n.p 2\n11 1\n00 1\n.e\n"
        f = BooleanFunction.from_pla_text(text)
        assert sorted(f.on.minterms()) == [0, 3]
        cover = f.minimized_cover
        assert verify_cover(cover, f.on)
