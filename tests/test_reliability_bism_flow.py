"""Tests for BISM strategies, the defect-unaware flow, variation and yield."""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crossbar import Lattice
from repro.reliability import (
    CrosspointState,
    DefectMap,
    VariationMap,
    as_program,
    best_path_delay,
    bism_density_sweep,
    blind_bism,
    clean_placement_probability,
    defect_unaware_flow,
    defective_junctions,
    diode_row_delay,
    expected_clean_squares,
    greedy_bism,
    greedy_clean_subarray,
    hybrid_bism,
    is_clean,
    lattice_critical_delay,
    lognormal_variation,
    mapping_is_valid,
    max_clean_square_exact,
    monte_carlo_yield,
    perfect_map,
    poisson_yield,
    random_defect_map,
    recovery_sweep,
    variation_aware_selection,
    variation_sweep,
)

PROGRAM = as_program([[True, False, True], [False, True, False]])


class TestBismStrategies:
    def test_perfect_crossbar_first_try(self):
        rng = random.Random(0)
        result = blind_bism(PROGRAM, perfect_map(5, 5), rng)
        assert result.success and result.bist_sessions == 1

    @pytest.mark.parametrize("strategy", [blind_bism, greedy_bism, hybrid_bism])
    def test_returned_mapping_is_valid(self, strategy):
        rng = random.Random(7)
        for seed in range(20):
            rng = random.Random(seed)
            defect_map = random_defect_map(8, 8, 0.08, rng)
            result = strategy(PROGRAM, defect_map, rng)
            if result.success:
                assert mapping_is_valid(PROGRAM, result.mapping, defect_map)
                assert len(set(result.mapping.row_map)) == len(PROGRAM)
                assert len(set(result.mapping.col_map)) == len(PROGRAM[0])

    def test_application_too_large_raises(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            blind_bism(PROGRAM, perfect_map(1, 1), rng)
        with pytest.raises(ValueError):
            greedy_bism(PROGRAM, perfect_map(1, 1), rng)

    def test_blind_gives_up_on_hopeless_fabric(self):
        rng = random.Random(1)
        # every crosspoint stuck-open: programmed junctions can never close
        defects = {(r, c): CrosspointState.STUCK_OPEN
                   for r in range(4) for c in range(4)}
        hopeless = DefectMap(4, 4, defects)
        result = blind_bism(PROGRAM, hopeless, rng, max_retries=10)
        assert not result.success and result.bist_sessions == 10

    def test_greedy_uses_diagnosis_sessions(self):
        rng = random.Random(3)
        defect_map = random_defect_map(8, 8, 0.25, rng)
        result = greedy_bism(PROGRAM, defect_map, rng, max_retries=100)
        if result.success and result.configurations_tried > 1:
            assert result.bisd_sessions == result.bist_sessions - 1

    def test_hybrid_switches(self):
        rng = random.Random(5)
        defect_map = random_defect_map(6, 6, 0.5, rng)
        result = hybrid_bism(PROGRAM, defect_map, rng,
                             blind_budget=2, max_retries=60)
        if result.bist_sessions > 2:
            assert result.switched_to_greedy

    def test_fabric_bist_agrees_with_direct_validity(self):
        # The behavioural BIST (fault simulator) and the defect-map check
        # must agree on pass/fail for the same mapping.
        from repro.reliability.bism import Mapping, _check

        rng = random.Random(11)
        for seed in range(30):
            rng_local = random.Random(seed)
            defect_map = random_defect_map(6, 6, 0.15, rng_local)
            mapping = Mapping(
                tuple(rng_local.sample(range(6), 2)),
                tuple(rng_local.sample(range(6), 3)),
            )
            direct = _check(PROGRAM, mapping, defect_map, use_fabric_bist=False)
            behavioural = _check(PROGRAM, mapping, defect_map, use_fabric_bist=True)
            assert direct == behavioural

    def test_defective_junctions_identifies_offenders(self):
        from repro.reliability.bism import Mapping

        defect_map = DefectMap(4, 4, {(0, 0): CrosspointState.STUCK_OPEN,
                                      (1, 1): CrosspointState.STUCK_CLOSED})
        mapping = Mapping((0, 1), (0, 1, 2))
        bad = defective_junctions(PROGRAM, mapping, defect_map)
        # app (0,0) -> phys (0,0): programmed on stuck-open -> offending
        assert (0, 0) in bad
        # app (1,1) -> phys (1,1): programmed on stuck-closed -> fine
        assert (1, 1) not in bad

    def test_density_sweep_shapes(self):
        rng = random.Random(9)
        points = bism_density_sweep(PROGRAM, 8, 8, [0.0, 0.3], trials=10, rng=rng,
                                    max_retries=60)
        by_key = {(p.strategy, p.density): p for p in points}
        # at zero density everything succeeds in one shot
        for strategy in ("blind", "greedy", "hybrid"):
            assert by_key[(strategy, 0.0)].success_rate == 1.0
            assert by_key[(strategy, 0.0)].avg_bist_sessions == 1.0
        # blind needs (weakly) more BIST sessions at high density
        assert (by_key[("blind", 0.3)].avg_bist_sessions
                >= by_key[("greedy", 0.3)].avg_bist_sessions - 1e-9)


class TestDefectUnaware:
    def test_greedy_result_is_clean(self):
        rng = random.Random(2)
        for seed in range(25):
            defect_map = random_defect_map(10, 10, 0.1, random.Random(seed))
            clean = greedy_clean_subarray(defect_map)
            assert is_clean(defect_map, clean.rows, clean.cols)

    def test_exact_result_is_clean_and_optimal_vs_bruteforce(self):
        from itertools import combinations

        for seed in range(10):
            rng = random.Random(seed)
            defect_map = random_defect_map(5, 5, 0.2, rng)
            exact = max_clean_square_exact(defect_map)
            assert is_clean(defect_map, exact.rows, exact.cols)
            # brute force the true maximum k
            best = 0
            for k in range(1, 6):
                found = False
                for rows in combinations(range(5), k):
                    for cols in combinations(range(5), k):
                        if defect_map.is_clean(list(rows), list(cols)):
                            found = True
                            break
                    if found:
                        break
                if found:
                    best = k
            assert exact.k == best

    def test_greedy_never_beats_exact(self):
        for seed in range(15):
            defect_map = random_defect_map(7, 7, 0.15, random.Random(seed))
            assert greedy_clean_subarray(defect_map).k <= max_clean_square_exact(defect_map).k

    def test_perfect_map_recovers_everything(self):
        clean = greedy_clean_subarray(perfect_map(6, 6))
        assert clean.shape == (6, 6) and clean.k == 6

    def test_flow_comparison_storage_and_sessions(self):
        rng = random.Random(4)
        defect_map = random_defect_map(16, 16, 0.05, rng)
        comparison = defect_unaware_flow(defect_map, 3, 3, rng)
        assert comparison.aware_map_words == 256
        assert comparison.unaware_map_words < 40
        if comparison.recovered_k >= 3:
            assert comparison.unaware_sessions_per_app == 0.0
        assert comparison.aware_sessions_per_app >= 1.0

    def test_recovery_sweep_monotone_in_density(self):
        rng = random.Random(6)
        rows = recovery_sweep(12, [0.0, 0.1, 0.3], trials=8, rng=rng)
        assert rows[0]["avg_k"] == 12
        assert rows[0]["avg_k"] >= rows[1]["avg_k"] >= rows[2]["avg_k"]


class TestVariation:
    def test_variation_map_validation(self):
        with pytest.raises(ValueError):
            VariationMap(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            VariationMap(np.ones(4))

    def test_lognormal_sigma_zero_is_nominal(self):
        vm = lognormal_variation(3, 3, 0.0, random.Random(0), nominal=2.0)
        assert np.allclose(vm.resistance, 2.0)

    def test_lognormal_vectorized_distribution_equivalence(self):
        """The vectorized Generator draw samples the same lognormal the
        old per-crosspoint ``rng.gauss`` loop did."""
        sigma, nominal = 0.5, 2.0
        vm = lognormal_variation(200, 200, sigma, random.Random(7),
                                 nominal=nominal)
        # Reference: the scalar formulation R = nominal * exp(N(0, sigma)).
        rng = random.Random(7)
        reference = np.array([
            nominal * np.exp(rng.gauss(0.0, sigma)) for _ in range(40_000)
        ])
        logs = np.log(vm.resistance / nominal).ravel()
        ref_logs = np.log(reference / nominal)
        assert abs(logs.mean() - ref_logs.mean()) < 0.02
        assert abs(logs.std() - ref_logs.std()) < 0.02
        assert abs(logs.std() - sigma) < 0.02
        for q in (5, 25, 50, 75, 95):
            assert abs(np.percentile(logs, q)
                       - np.percentile(ref_logs, q)) < 0.03

    def test_lognormal_seeded_and_accepts_generator(self):
        a = lognormal_variation(4, 4, 0.3, random.Random(9))
        b = lognormal_variation(4, 4, 0.3, random.Random(9))
        assert np.allclose(a.resistance, b.resistance)
        g = lognormal_variation(4, 4, 0.3, np.random.default_rng(9))
        h = lognormal_variation(4, 4, 0.3, np.random.default_rng(9))
        assert np.allclose(g.resistance, h.resistance)
        assert not np.allclose(a.resistance, g.resistance)

    def test_best_path_delay_simple(self):
        grid = [[True, False], [True, False]]
        resistance = np.array([[1.0, 9.0], [2.0, 9.0]])
        assert best_path_delay(grid, resistance) == pytest.approx(3.0)

    def test_best_path_delay_picks_cheaper_route(self):
        grid = [[True, True], [True, True]]
        resistance = np.array([[1.0, 10.0], [1.0, 10.0]])
        assert best_path_delay(grid, resistance) == pytest.approx(2.0)

    def test_best_path_delay_none_when_blocked(self):
        grid = [[True], [False]]
        assert best_path_delay(grid, np.ones((2, 1))) is None

    def test_lattice_critical_delay_nominal(self):
        lattice = Lattice.from_strings(2, ["x1", "x2"])
        vm = VariationMap(np.ones((2, 1)))
        assert lattice_critical_delay(lattice, vm) == pytest.approx(2.0)

    def test_diode_row_delay(self):
        vm = VariationMap(np.array([[1.0, 2.0], [3.0, 4.0]]))
        program = [[True, True], [True, False]]
        assert diode_row_delay(program, vm) == pytest.approx(3.0)

    def test_aware_selection_picks_low_resistance_lines(self):
        resistance = np.array([
            [1.0, 1.0, 5.0],
            [9.0, 9.0, 9.0],
            [1.0, 1.0, 5.0],
        ])
        rows, cols = variation_aware_selection(VariationMap(resistance), 2, 2)
        assert rows == [0, 2]
        assert cols == [0, 1]

    def test_variation_sweep_aware_no_worse(self):
        rng = random.Random(8)
        lattice = Lattice.from_strings(2, ["x1 x1'", "x2 x2'"])
        points = variation_sweep(lattice, [0.8], 8, 8, trials=30, rng=rng)
        assert points[0].aware_mean <= points[0].oblivious_mean


class TestYield:
    def test_clean_placement_probability(self):
        assert clean_placement_probability(2, 2, 0.0) == 1.0
        assert clean_placement_probability(2, 2, 0.5) == pytest.approx(0.0625)

    def test_expected_clean_squares_monotone(self):
        assert expected_clean_squares(8, 3, 0.1) > expected_clean_squares(8, 5, 0.1)
        assert expected_clean_squares(8, 9, 0.1) == 0.0

    def test_poisson_yield(self):
        assert poisson_yield(0.0, 5.0) == 1.0
        assert poisson_yield(2.0, 0.5) == pytest.approx(np.exp(-1.0))

    def test_monte_carlo_yield_extremes(self):
        rng = random.Random(10)
        assert monte_carlo_yield(6, 6, 0.0, 10, rng).yield_rate == 1.0
        assert monte_carlo_yield(6, 6, 0.9, 10, rng).yield_rate == 0.0

    def test_monte_carlo_close_to_fixed_probability_for_k_equals_n(self):
        # with k == N there is a single candidate subarray, so the yield is
        # exactly the fixed-placement probability (up to MC noise)
        rng = random.Random(11)
        estimate = monte_carlo_yield(4, 4, 0.05, 400, rng)
        analytic = clean_placement_probability(4, 4, 0.05)
        assert abs(estimate.yield_rate - analytic) < 0.1

    @given(st.integers(min_value=1, max_value=4), st.floats(min_value=0.0, max_value=0.4))
    @settings(max_examples=20, deadline=None)
    def test_greedy_mc_yield_is_lower_bound_of_exact(self, k, density):
        rng = random.Random(42)
        greedy_est = monte_carlo_yield(5, k, density, 30, rng)
        rng = random.Random(42)
        exact_est = monte_carlo_yield(5, k, density, 30, rng, exact=True)
        assert greedy_est.yield_rate <= exact_est.yield_rate + 1e-9
