"""Tests for the architecture extensions: blocks, arithmetic, memory, SSM."""

import pytest

from repro.arch import (
    CrossbarMemory,
    RegisterBank,
    SynchronousStateMachine,
    address_decoder,
    adder_reference,
    adder_report,
    comparator_reference,
    counter_spec,
    sequence_detector_spec,
    synthesize_adder,
    synthesize_block,
    synthesize_comparator,
)
from repro.boolean import BooleanFunction, TruthTable


class TestBlocks:
    def test_block_styles_all_implement(self):
        f = BooleanFunction.from_expression("x1 x2 + x3", label="t")
        for style in ("lattice", "diode", "fet"):
            block = synthesize_block("t", f, style)
            for m in range(8):
                assert block.evaluate(m) == f.evaluate(m)

    def test_constant_function_degenerates_to_lattice(self):
        f = BooleanFunction.from_truth_table(TruthTable.constant(2, True))
        block = synthesize_block("one", f, "diode")
        assert block.style == "lattice"
        assert block.evaluate(0)

    def test_unknown_style_rejected(self):
        f = BooleanFunction.from_expression("x1")
        with pytest.raises(ValueError):
            synthesize_block("t", f, "quantum")

    def test_area_positive(self):
        f = BooleanFunction.from_expression("x1 x2")
        assert synthesize_block("t", f).area >= 2


class TestAdder:
    @pytest.mark.parametrize("width", [1, 2])
    def test_adder_exhaustive(self, width):
        adder = synthesize_adder(width)
        reference = adder_reference(width)
        assert adder.verify_against(reference)

    def test_adder_with_carry_in(self):
        adder = synthesize_adder(1, with_carry_in=True)
        reference = adder_reference(1, with_carry_in=True)
        assert adder.verify_against(reference)

    def test_adder_styles(self):
        for style in ("lattice", "diode"):
            adder = synthesize_adder(1, style=style)
            assert adder.verify_against(adder_reference(1))

    def test_adder_report(self):
        report = adder_report(2)
        assert report.width == 2
        assert report.total_area == sum(report.per_output_areas)
        assert len(report.per_output_areas) == 3  # 2 sums + carry

    def test_width_validation(self):
        with pytest.raises(ValueError):
            synthesize_adder(0)


class TestComparator:
    @pytest.mark.parametrize("width", [1, 2])
    def test_comparator_exhaustive(self, width):
        comparator = synthesize_comparator(width)
        assert comparator.verify_against(comparator_reference(width))

    def test_outputs_mutually_exclusive(self):
        comparator = synthesize_comparator(2)
        for m in range(16):
            out = comparator.evaluate(m)
            assert bin(out).count("1") == 1  # exactly one of lt/eq/gt


class TestMemory:
    def test_decoder_one_hot(self):
        decoder = address_decoder(3)
        for address in range(8):
            selected = [r for r in range(decoder.num_rows)
                        if decoder.row_value(r, address)]
            assert selected == [address]

    def test_memory_read_write(self):
        memory = CrossbarMemory(2, 4)
        memory.write(0, 0b1010)
        memory.write(3, 0b0110)
        assert memory.read(0) == 0b1010
        assert memory.read(3) == 0b0110
        assert memory.read(1) == 0

    def test_memory_overwrite(self):
        memory = CrossbarMemory(2, 2)
        memory.write(1, 0b11)
        memory.write(1, 0b01)
        assert memory.read(1) == 0b01

    def test_memory_validation(self):
        memory = CrossbarMemory(2, 2)
        with pytest.raises(ValueError):
            memory.read(4)
        with pytest.raises(ValueError):
            memory.write(0, 4)
        with pytest.raises(ValueError):
            CrossbarMemory(0, 2)

    def test_memory_area_includes_decoder(self):
        memory = CrossbarMemory(2, 4)
        assert memory.total_area > 4 * 4


class TestRegisterBank:
    def test_capture_clock(self):
        reg = RegisterBank(3)
        reg.capture(5)
        assert reg.state == 0
        assert reg.clock() == 5
        assert reg.state == 5

    def test_clock_without_capture_raises(self):
        reg = RegisterBank(2)
        with pytest.raises(RuntimeError):
            reg.clock()

    def test_width_validation(self):
        with pytest.raises(ValueError):
            RegisterBank(2, state=7)
        reg = RegisterBank(2)
        with pytest.raises(ValueError):
            reg.capture(9)


class TestSsm:
    def test_counter_counts(self):
        ssm = SynchronousStateMachine(counter_spec(3))
        assert ssm.verify_against_spec()
        outputs = ssm.run([1, 1, 0, 1])
        # Moore-style: output sampled before the edge
        assert outputs == [0, 1, 2, 2]
        assert ssm.state == 3

    def test_counter_wraps(self):
        ssm = SynchronousStateMachine(counter_spec(2))
        ssm.run([1] * 5)
        assert ssm.state == 1  # 5 mod 4

    def test_reset(self):
        ssm = SynchronousStateMachine(counter_spec(2))
        ssm.run([1, 1])
        ssm.reset()
        assert ssm.state == 0

    def test_input_validation(self):
        ssm = SynchronousStateMachine(counter_spec(2))
        with pytest.raises(ValueError):
            ssm.step(2)

    @pytest.mark.parametrize("pattern", [[1, 0, 1], [1, 1], [0, 0, 1]])
    def test_sequence_detector_matches_naive_scan(self, pattern):
        ssm = SynchronousStateMachine(sequence_detector_spec(pattern))
        assert ssm.verify_against_spec()
        stream = [1, 0, 1, 1, 0, 1, 0, 1, 1, 0, 0, 1, 0, 0, 1, 1]
        outputs = ssm.run(stream)
        # naive overlapping matcher: output[t] == 1 iff the pattern ends at
        # position t-1 of the stream
        for t in range(len(stream)):
            window = stream[max(0, t - len(pattern)):t]
            expected = 1 if (t >= len(pattern)
                             and stream[t - len(pattern):t] == list(pattern)) else 0
            assert outputs[t] == expected, (pattern, t)

    def test_detector_rejects_bad_pattern(self):
        with pytest.raises(ValueError):
            sequence_detector_spec([])
        with pytest.raises(ValueError):
            sequence_detector_spec([0, 2])

    def test_ssm_area_reported(self):
        ssm = SynchronousStateMachine(counter_spec(2))
        assert ssm.total_area > 0
