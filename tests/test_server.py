"""Tests for the async batch server: protocol, queue, HTTP, client.

A real listener on an ephemeral localhost port (``serve_in_thread``)
backs most tests; served results are compared bit-for-bit against direct
``BatchEngine`` / campaign runs, and the coalescing tests drive genuinely
concurrent clients from a thread pool.
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.engine import BatchEngine, SynthesisJob, lattice_to_text
from repro.eval.benchsuite import by_name
from repro.faultlab import CampaignSpec, iter_campaign, run_campaign
from repro.server import (
    ProtocolError,
    ServerClient,
    ServerError,
    parse_submission,
    serve_in_thread,
)
from repro.synthesis import synthesize_lattice_dual
from repro.varsim import (
    VariationCampaignSpec,
    iter_variation_campaign,
    run_variation_campaign,
)

FAULTSIM_PAYLOAD = {
    "kind": "faultsim", "n_values": [6], "k_values": [3, 6],
    "densities": [0.05], "trials": 30, "batch_size": 15,
}
VARSWEEP_PAYLOAD = {
    "kind": "varsweep", "bench": "xnor2", "sigmas": [0.3],
    "crossbar_rows": 8, "crossbar_cols": 8, "trials": 20,
    "batch_size": 10,
}


@pytest.fixture(scope="module")
def server():
    handle = serve_in_thread(processes=1, job_workers=2)
    yield handle
    handle.server.request_stop()
    handle.thread.join(timeout=30)


@pytest.fixture()
def client(server):
    return ServerClient(port=server.port, timeout=120.0)


class TestCampaignIterators:
    """The streaming refactor: iterators match the aggregate runners."""

    def test_iter_campaign_matches_run_campaign(self):
        spec = CampaignSpec(n_values=(6,), k_values=(3,),
                            densities=(0.05, 0.1), trials=20,
                            batch_size=10)
        streamed = list(iter_campaign(spec))
        aggregate = run_campaign(spec)
        assert [e.k_histogram for e in streamed] == \
               [e.k_histogram for e in aggregate.estimates]
        assert [e.point for e in streamed] == \
               [e.point for e in aggregate.estimates]

    def test_iter_campaign_persists_incrementally(self, tmp_path):
        from repro.engine import JsonStore

        spec = CampaignSpec(n_values=(6,), k_values=(3,),
                            densities=(0.02, 0.1), trials=10,
                            batch_size=5)
        store = JsonStore(str(tmp_path / "campaigns.sqlite"))
        iterator = iter_campaign(spec, store=store)
        first = next(iterator)
        # The first point is durable before the second is even sampled.
        assert store.get(first.point.key()) is not None
        assert store.get(spec.points()[1].key()) is None
        rest = list(iterator)
        assert len(rest) == 1 and not rest[0].cache_hit
        # A rerun serves both points from the store.
        rerun = list(iter_campaign(spec, store=store))
        assert all(est.cache_hit for est in rerun)
        assert [e.k_histogram for e in rerun] == \
               [e.k_histogram for e in [first, *rest]]
        store.close()

    def test_iter_variation_campaign_matches_runner(self):
        lattice = synthesize_lattice_dual(by_name("xnor2").function.on)
        spec = VariationCampaignSpec(lattice=lattice, sigmas=(0.2, 0.5),
                                     crossbar_rows=8, crossbar_cols=8,
                                     trials=10, batch_size=5)
        streamed = list(iter_variation_campaign(spec))
        aggregate = run_variation_campaign(spec)
        assert [e.aware_delays for e in streamed] == \
               [e.aware_delays for e in aggregate.estimates]
        assert [e.oblivious_delays for e in streamed] == \
               [e.oblivious_delays for e in aggregate.estimates]


class TestProtocol:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError, match="unknown submission kind"):
            parse_submission({"kind": "mystery"})

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError):
            parse_submission([1, 2, 3])

    def test_synthesis_needs_jobs(self):
        with pytest.raises(ProtocolError):
            parse_submission({"kind": "synthesis", "jobs": []})

    def test_unknown_bench_rejected(self):
        with pytest.raises(ProtocolError, match="nope"):
            parse_submission({"kind": "synthesis",
                              "jobs": [{"bench": "nope"}]})

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ProtocolError, match="alchemy"):
            parse_submission({"kind": "synthesis",
                              "jobs": [{"bench": "xnor2"}],
                              "strategies": ["alchemy"]})

    def test_bad_campaign_spec_rejected(self):
        with pytest.raises(ProtocolError, match="densities"):
            parse_submission({"kind": "faultsim", "n_values": [6],
                              "k_values": [3], "densities": [1.5]})

    def test_coalesce_keys_are_content_addressed(self):
        spelled = parse_submission({"kind": "synthesis",
                                    "jobs": [{"bench": "xnor2"}]})
        function = by_name("xnor2").function
        explicit = parse_submission({
            "kind": "synthesis",
            "jobs": [{"label": "xnor2", "n": function.n,
                      "bits": function.on.bits}],
        })
        assert spelled.coalesce_key == explicit.coalesce_key
        other = parse_submission({"kind": "synthesis",
                                  "jobs": [{"bench": "xor3"}]})
        assert other.coalesce_key != spelled.coalesce_key

    def test_campaign_keys_differ_by_grid(self):
        base = parse_submission(FAULTSIM_PAYLOAD)
        denser = parse_submission({**FAULTSIM_PAYLOAD,
                                   "densities": [0.05, 0.1]})
        assert base.coalesce_key != denser.coalesce_key
        assert denser.points_total == 2


class TestHttpEndpoints:
    def test_health(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert "active" in health

    def test_stats_shape(self, client):
        stats = client.stats()
        assert {"queue", "engine", "synthesis_cache_entries",
                "campaign_store_entries"} <= set(stats)

    def test_unknown_job_404(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.status("job-999999")
        assert excinfo.value.status == 404

    def test_bad_json_400(self, client):
        import http.client

        conn = http.client.HTTPConnection(client.host, client.port,
                                          timeout=30)
        try:
            conn.request("POST", "/api/submit", body=b"{nope",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            assert response.status == 400
            assert "bad JSON" in json.loads(response.read())["error"]
        finally:
            conn.close()

    def test_bad_submission_400(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.submit({"kind": "synthesis",
                           "jobs": [{"bench": "missing-bench"}]})
        assert excinfo.value.status == 400

    def test_unknown_route_404(self, client):
        with pytest.raises(ServerError) as excinfo:
            client._request("GET", "/api/nope")
        assert excinfo.value.status == 404

    def test_submit_is_post_only(self, client):
        with pytest.raises(ServerError) as excinfo:
            client._request("GET", "/api/submit")
        assert excinfo.value.status == 405

    def test_oversized_body_413(self, client):
        import socket

        with socket.create_connection((client.host, client.port),
                                      timeout=30) as sock:
            sock.sendall(b"POST /api/submit HTTP/1.1\r\n"
                         b"Host: localhost\r\n"
                         b"Content-Length: 99999999999\r\n\r\n")
            chunks = []
            while chunk := sock.recv(4096):
                chunks.append(chunk)
            answer = b"".join(chunks).decode()
        assert answer.startswith("HTTP/1.1 413 ")
        assert "exceeds" in answer

    def test_nowait_result_409_while_running(self, client):
        submitted = client.submit(FAULTSIM_PAYLOAD)
        # wait=0 may race completion; accept either a 409 or the result.
        try:
            snapshot = client.result(submitted["job_id"], wait=False)
            assert snapshot["state"] == "done"
        except ServerError as error:
            assert error.status == 409
        final = client.result(submitted["job_id"])
        assert final["state"] == "done"


class TestServedEqualsDirect:
    """The acceptance criterion: served answers are bit-identical."""

    def test_synthesis_bit_identical(self, client):
        benches = ["xnor2", "xor3", "maj3"]
        served = client.run({"kind": "synthesis",
                             "jobs": [{"bench": name}
                                      for name in benches]})
        with BatchEngine() as engine:
            direct = engine.run([
                SynthesisJob.from_function(by_name(name).function, name)
                for name in benches
            ])
        assert [p["lattice"] for p in served["points"]] == \
               [lattice_to_text(r.lattice) for r in direct]
        assert [p["strategy"] for p in served["points"]] == \
               [r.strategy for r in direct]
        assert [p["area"] for p in served["points"]] == \
               [r.area for r in direct]

    def test_faultsim_bit_identical(self, client):
        served = client.run(FAULTSIM_PAYLOAD)
        spec = CampaignSpec(n_values=(6,), k_values=(3, 6),
                            densities=(0.05,), trials=30, batch_size=15)
        direct = run_campaign(spec)
        assert [p["k_histogram"] for p in served["points"]] == \
               [list(e.k_histogram) for e in direct.estimates]

    def test_varsweep_bit_identical(self, client):
        served = client.run(VARSWEEP_PAYLOAD)
        lattice = synthesize_lattice_dual(by_name("xnor2").function.on)
        spec = VariationCampaignSpec(lattice=lattice, sigmas=(0.3,),
                                     crossbar_rows=8, crossbar_cols=8,
                                     trials=20, batch_size=10)
        direct = run_variation_campaign(spec)
        assert served["points"][0]["aware_delays"] == \
            list(direct.estimates[0].aware_delays)
        assert served["points"][0]["oblivious_delays"] == \
            list(direct.estimates[0].oblivious_delays)

    def test_stream_replays_full_sequence(self, client):
        payload = {**FAULTSIM_PAYLOAD, "densities": [0.02, 0.08],
                   "seed": 3}
        submitted = client.submit(payload)
        lines = list(client.stream(submitted["job_id"]))
        assert lines[-1]["state"] == "done"
        points = [line["point"] for line in lines[:-1]]
        assert len(points) == 2
        result = client.result(submitted["job_id"])
        assert points == result["points"]


class TestCoalescing:
    def test_identical_concurrent_submissions_share_one_computation(
            self, client):
        payload = {**FAULTSIM_PAYLOAD, "trials": 60, "seed": 11}
        before = client.stats()["queue"]
        barrier = threading.Barrier(6)

        def one_client() -> dict:
            # Fresh client per thread: six genuinely concurrent sockets.
            mine = ServerClient(port=client.port, timeout=120.0)
            barrier.wait()
            submitted = mine.submit(payload)
            result = mine.result(submitted["job_id"])
            result["coalesced"] = submitted["coalesced"]
            return result

        with ThreadPoolExecutor(max_workers=6) as pool:
            results = [future.result()
                       for future in [pool.submit(one_client)
                                      for _ in range(6)]]

        after = client.stats()["queue"]
        assert after["computations"] - before["computations"] == 1
        assert after["coalesced"] - before["coalesced"] == 5
        histograms = {json.dumps(r["points"]) for r in results}
        assert len(histograms) == 1  # every client saw the same answer
        assert all(r["state"] == "done" for r in results)
        assert sum(1 for r in results if r["coalesced"]) == 5

    def test_distinct_concurrent_clients_all_complete(self, client):
        seeds = list(range(4))
        barrier = threading.Barrier(len(seeds))

        def one_client(seed: int) -> dict:
            mine = ServerClient(port=client.port, timeout=120.0)
            barrier.wait()
            return mine.run({**FAULTSIM_PAYLOAD, "trials": 40,
                             "seed": 100 + seed})

        with ThreadPoolExecutor(max_workers=len(seeds)) as pool:
            results = list(pool.map(one_client, seeds))

        assert all(r["state"] == "done" for r in results)
        # Distinct seeds are distinct computations — no false sharing.
        assert len({json.dumps(r["points"]) for r in results}) == len(seeds)

    def test_late_duplicate_reuses_finished_job(self, client):
        payload = {**FAULTSIM_PAYLOAD, "trials": 20, "seed": 21}
        first = client.run(payload)
        again = client.submit(payload)
        assert again["coalesced"]
        assert again["job_id"] == first["job_id"]
        assert client.result(again["job_id"])["points"] == first["points"]


class _StubBridge:
    """Scripted worker bridge for queue-level tests (no real compute)."""

    def __init__(self):
        self.executor = ThreadPoolExecutor(max_workers=1)
        self.fail_next = False
        self.runs = 0

    def run_submission(self, submission, emit, trace_id=None):
        self.runs += 1
        emit("running", None)
        if self.fail_next:
            self.fail_next = False
            emit("failed", "scripted failure")
        else:
            emit("point", {"value": self.runs})
            emit("done", None)


class TestQueueLifecycle:
    def test_failed_job_does_not_poison_coalescing(self):
        import asyncio

        from repro.server.queue import JobQueue

        bridge = _StubBridge()
        bridge.fail_next = True

        async def scenario():
            queue = JobQueue(bridge, asyncio.get_running_loop())
            submission = parse_submission(FAULTSIM_PAYLOAD)
            failed_job, coalesced = queue.submit(submission)
            assert not coalesced
            await queue.drain()
            assert failed_job.state == "failed"
            # The failure evicted the coalesce key: an identical
            # submission recomputes instead of replaying the failure.
            retry_job, coalesced = queue.submit(submission)
            assert not coalesced
            assert retry_job.job_id != failed_job.job_id
            await queue.drain()
            assert retry_job.state == "done"
            # The failed record stays queryable by id meanwhile.
            assert queue.get(failed_job.job_id) is failed_job
            return queue.stats

        stats = asyncio.run(scenario())
        assert stats["computations"] == 2
        assert stats["failed"] == 1 and stats["completed"] == 1

    def test_finished_jobs_evicted_beyond_retention(self, monkeypatch):
        import asyncio

        import repro.server.queue as queue_module

        monkeypatch.setattr(queue_module, "MAX_RETAINED_JOBS", 2)
        bridge = _StubBridge()

        async def scenario():
            queue = queue_module.JobQueue(
                bridge, asyncio.get_running_loop())
            for seed in range(5):
                queue.submit(parse_submission(
                    {**FAULTSIM_PAYLOAD, "seed": seed}))
                await queue.drain()
            return queue

        queue = asyncio.run(scenario())
        assert len(queue._jobs) <= 2
        assert len(queue._by_key) <= 2


class TestShutdown:
    def test_clean_shutdown_drains_and_stops(self):
        handle = serve_in_thread(processes=1, job_workers=1)
        client = ServerClient(port=handle.port, timeout=60.0)
        client.wait_healthy()
        submitted = client.submit({**FAULTSIM_PAYLOAD, "seed": 31})
        assert client.result(submitted["job_id"])["state"] == "done"
        client.shutdown()
        client.wait_stopped()
        handle.thread.join(timeout=30)
        assert not handle.thread.is_alive()
