"""Tests for the SAT substrate: CNF, encodings, DIMACS and the CDCL solver."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat import (
    Cnf,
    Solver,
    at_most_k_sequential,
    at_most_one_pairwise,
    at_most_one_sequential,
    brute_force_cnf,
    exactly_one,
    luby,
    parse_dimacs,
    solve_cnf,
    tseitin_and,
    tseitin_or,
    tseitin_xor,
    write_dimacs,
)


class TestCnf:
    def test_add_clause_tracks_vars(self):
        cnf = Cnf()
        cnf.add_clause([1, -5])
        assert cnf.num_vars == 5 and len(cnf) == 1

    def test_tautologies_dropped(self):
        cnf = Cnf()
        cnf.add_clause([1, -1, 2])
        assert len(cnf) == 0

    def test_duplicate_literals_merged(self):
        cnf = Cnf()
        cnf.add_clause([2, 2, 3])
        assert cnf.clauses[0] == (2, 3)

    def test_zero_literal_rejected(self):
        with pytest.raises(ValueError):
            Cnf().add_clause([0])

    def test_evaluate(self):
        cnf = Cnf()
        cnf.add_clause([1, 2])
        cnf.add_clause([-1])
        assert cnf.evaluate({1: False, 2: True})
        assert not cnf.evaluate({1: True, 2: True})


class TestLuby:
    def test_prefix(self):
        assert [luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            luby(0)


class TestSolverBasics:
    def test_empty_formula_sat(self):
        assert Solver().solve() is True

    def test_unit_conflict_unsat(self):
        solver = Solver()
        solver.add_clause([1])
        assert solver.add_clause([-1]) is False
        assert solver.solve() is False

    def test_simple_sat_model(self):
        solver = Solver()
        solver.add_clause([1, 2])
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        assert solver.solve() is True
        model = solver.model()
        assert model[2] and model[3]

    def test_pigeonhole_2_into_1_unsat(self):
        # two pigeons, one hole
        solver = Solver()
        solver.add_clause([1])   # pigeon 1 in hole 1
        solver.add_clause([2])   # pigeon 2 in hole 1
        solver.add_clause([-1, -2])
        assert solver.solve() is False

    def test_pigeonhole_3_into_2_unsat(self):
        # p_{i,j}: pigeon i (1..3) in hole j (1..2); var = 2*(i-1)+j
        cnf = Cnf()
        for i in range(3):
            cnf.add_clause([2 * i + 1, 2 * i + 2])
        for j in (1, 2):
            for i1 in range(3):
                for i2 in range(i1 + 1, 3):
                    cnf.add_clause([-(2 * i1 + j), -(2 * i2 + j)])
        assert solve_cnf(cnf) is None

    def test_assumptions(self):
        solver = Solver()
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        assert solver.solve(assumptions=[1]) is True
        assert solver.model()[3]
        solver2 = Solver()
        solver2.add_clause([-1, 2])
        solver2.add_clause([-2])
        assert solver2.solve(assumptions=[1]) is False

    def test_assumptions_conflicting_directly(self):
        solver = Solver()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[-1, -2]) is False

    def test_model_satisfies_formula(self):
        cnf = Cnf()
        clauses = [[1, -2, 3], [-1, 2], [2, 3, 4], [-3, -4], [1, 4]]
        cnf.add_clauses(clauses)
        model = solve_cnf(cnf)
        assert model is not None and cnf.evaluate(model)

    def test_statistics_populated(self):
        solver = Solver()
        solver.add_clause([1, 2])
        solver.solve()
        stats = solver.statistics()
        assert stats["vars"] == 2


def random_cnf(rng: random.Random, num_vars: int, num_clauses: int, width: int = 3) -> Cnf:
    cnf = Cnf(num_vars)
    for _ in range(num_clauses):
        size = rng.randint(1, width)
        vars_chosen = rng.sample(range(1, num_vars + 1), min(size, num_vars))
        cnf.add_clause([v if rng.random() < 0.5 else -v for v in vars_chosen])
    return cnf


class TestSolverAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(40))
    def test_random_3cnf_agrees(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(3, 9)
        # around the phase transition ratio 4.3 for hard instances
        num_clauses = int(num_vars * rng.uniform(2.0, 6.0))
        cnf = random_cnf(rng, num_vars, num_clauses)
        expected = brute_force_cnf(cnf)
        model = solve_cnf(cnf)
        if expected is None:
            assert model is None
        else:
            assert model is not None
            assert cnf.evaluate(model)

    @pytest.mark.parametrize("seed", range(10))
    def test_larger_sat_instances(self, seed):
        rng = random.Random(1000 + seed)
        cnf = random_cnf(rng, 40, 120)
        model = solve_cnf(cnf)
        if model is not None:
            assert cnf.evaluate(model)
        else:
            # cross-check a claimed-UNSAT result on a smaller projection
            assert brute_force_cnf(cnf) is None if cnf.num_vars <= 22 else True


def enumerate_models(cnf: Cnf, over_vars: int):
    """All assignments of vars 1..over_vars extendable to full models."""
    models = set()
    for bits in range(1 << cnf.num_vars):
        model = {v: bool((bits >> (v - 1)) & 1) for v in range(1, cnf.num_vars + 1)}
        if cnf.evaluate(model):
            models.add(tuple(model[v] for v in range(1, over_vars + 1)))
    return models


class TestEncodings:
    @pytest.mark.parametrize("k", [1, 2, 3, 5, 7])
    def test_amo_pairwise_exact_semantics(self, k):
        cnf = Cnf(k)
        at_most_one_pairwise(cnf, list(range(1, k + 1)))
        models = enumerate_models(cnf, k)
        assert models == {m for m in models if sum(m) <= 1}
        assert len(models) == k + 1

    @pytest.mark.parametrize("k", [5, 6, 8])
    def test_amo_sequential_matches_pairwise(self, k):
        cnf = Cnf(k)
        at_most_one_sequential(cnf, list(range(1, k + 1)))
        models = enumerate_models(cnf, k)
        assert len(models) == k + 1
        assert all(sum(m) <= 1 for m in models)

    @pytest.mark.parametrize("k", [2, 4, 6])
    def test_exactly_one(self, k):
        cnf = Cnf(k)
        exactly_one(cnf, list(range(1, k + 1)))
        models = enumerate_models(cnf, k)
        assert len(models) == k
        assert all(sum(m) == 1 for m in models)

    @pytest.mark.parametrize("n,k", [(4, 1), (4, 2), (5, 3), (5, 0), (3, 3)])
    def test_at_most_k(self, n, k):
        cnf = Cnf(n)
        at_most_k_sequential(cnf, list(range(1, n + 1)), k)
        models = enumerate_models(cnf, n)
        expected = sum(
            1 for bits in range(1 << n) if bin(bits).count("1") <= k
        )
        assert len(models) == expected
        assert all(sum(m) <= k for m in models)

    def test_tseitin_and_or_xor(self):
        cnf = Cnf(3)
        a = tseitin_and(cnf, [1, 2])
        o = tseitin_or(cnf, [2, 3])
        x = tseitin_xor(cnf, 1, 3)
        for bits in range(8):
            model_in = {v: bool((bits >> (v - 1)) & 1) for v in (1, 2, 3)}
            cnf2 = Cnf(cnf.num_vars)
            cnf2.add_clauses(cnf.clauses)
            for v, val in model_in.items():
                cnf2.add_clause([v if val else -v])
            model = solve_cnf(cnf2)
            assert model is not None
            assert model[a] == (model_in[1] and model_in[2])
            assert model[o] == (model_in[2] or model_in[3])
            assert model[x] == (model_in[1] != model_in[3])


class TestDimacs:
    def test_roundtrip(self):
        cnf = Cnf()
        cnf.add_clause([1, -2, 3])
        cnf.add_clause([-3])
        text = write_dimacs(cnf)
        again = parse_dimacs(text)
        assert again.num_vars == cnf.num_vars
        assert list(again) == list(cnf)

    def test_parse_with_comments(self):
        text = "c hello\np cnf 3 2\n1 -2 0\n2 3 0\n"
        cnf = parse_dimacs(text)
        assert len(cnf) == 2 and cnf.num_vars == 3

    def test_parse_errors(self):
        with pytest.raises(ValueError):
            parse_dimacs("1 2 0\n")
        with pytest.raises(ValueError):
            parse_dimacs("p wrong 1 1\n")

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=10),
           st.integers())
    @settings(max_examples=30)
    def test_roundtrip_random(self, num_vars, num_clauses, seed):
        rng = random.Random(seed)
        cnf = random_cnf(rng, num_vars, num_clauses)
        again = parse_dimacs(write_dimacs(cnf))
        assert list(again) == list(cnf)
