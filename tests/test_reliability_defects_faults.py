"""Tests for defect maps and the fault simulator."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.reliability import (
    BridgeFault,
    CrossbarFabric,
    CrosspointState,
    CrosspointStuckClosed,
    CrosspointStuckOpen,
    DefectMap,
    LineStuckAt,
    all_single_faults,
    clustered_defect_map,
    perfect_map,
    random_defect_map,
    sample_chip,
)


class TestDefectMap:
    def test_perfect_map(self):
        m = perfect_map(4, 4)
        assert m.num_defects == 0 and m.density == 0.0
        assert m.is_ok(0, 0)

    def test_state_accessors(self):
        m = DefectMap(2, 2, {(0, 1): CrosspointState.STUCK_OPEN,
                             (1, 0): CrosspointState.STUCK_CLOSED})
        assert m.is_stuck_open(0, 1) and not m.is_stuck_open(1, 0)
        assert m.is_stuck_closed(1, 0)
        assert m.state(0, 0) is CrosspointState.OK
        assert m.defective_rows() == {0, 1}
        assert m.row_defect_counts() == [1, 1]

    def test_validation(self):
        with pytest.raises(ValueError):
            DefectMap(2, 2, {(5, 0): CrosspointState.STUCK_OPEN})
        with pytest.raises(ValueError):
            DefectMap(2, 2, {(0, 0): CrosspointState.OK})

    def test_submap_reindexes(self):
        m = DefectMap(3, 3, {(1, 2): CrosspointState.STUCK_OPEN})
        sub = m.submap([1], [2])
        assert sub.rows == 1 and sub.is_stuck_open(0, 0)

    def test_is_clean(self):
        m = DefectMap(3, 3, {(1, 1): CrosspointState.STUCK_OPEN})
        assert m.is_clean([0, 2], [0, 1, 2])
        assert not m.is_clean([0, 1], [1])

    def test_render(self):
        m = DefectMap(2, 2, {(0, 0): CrosspointState.STUCK_OPEN,
                             (1, 1): CrosspointState.STUCK_CLOSED})
        assert m.render() == "o.\n.x"

    @given(st.floats(min_value=0.0, max_value=0.5), st.integers())
    @settings(max_examples=30)
    def test_random_map_density_tracks_parameter(self, density, seed):
        rng = random.Random(seed)
        m = random_defect_map(20, 20, density, rng)
        assert abs(m.density - density) < 0.2
        for state in m.defects.values():
            assert state is not CrosspointState.OK

    def test_clustered_map_expected_count(self):
        rng = random.Random(3)
        m = clustered_defect_map(30, 30, 0.1, rng)
        assert 0 < m.num_defects <= 0.1 * 900 + 1

    def test_density_bounds_validated(self):
        with pytest.raises(ValueError):
            random_defect_map(4, 4, 1.5, random.Random(0))

    def test_sample_chip(self):
        rng = random.Random(5)
        chip = sample_chip(8, 10, 10, 0.1, 0.05, rng)
        assert chip.num_crossbars == 8
        assert 0.0 <= chip.mean_density() <= 1.0


class TestDefectMapSerialization:
    @given(
        rows=st.integers(min_value=1, max_value=12),
        cols=st.integers(min_value=1, max_value=12),
        density=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(),
    )
    @settings(max_examples=50)
    def test_property_round_trip(self, rows, cols, density, seed):
        m = random_defect_map(rows, cols, density, random.Random(seed))
        rebuilt = DefectMap.from_bytes(m.to_bytes())
        assert rebuilt == m
        assert rebuilt.content_hash() == m.content_hash()

    def test_bytes_are_deterministic_and_compact(self):
        m = random_defect_map(10, 10, 0.2, random.Random(1))
        assert m.to_bytes() == m.to_bytes()
        # header (16 bytes) + 5 bytes per sparse defect
        assert len(m.to_bytes()) == 16 + 5 * m.num_defects

    def test_content_hash_distinguishes_maps(self):
        empty = perfect_map(4, 4)
        one = DefectMap(4, 4, {(1, 2): CrosspointState.STUCK_OPEN})
        other = DefectMap(4, 4, {(1, 2): CrosspointState.STUCK_CLOSED})
        assert len({empty.content_hash(), one.content_hash(),
                    other.content_hash()}) == 3

    def test_from_bytes_rejects_garbage(self):
        with pytest.raises(ValueError):
            DefectMap.from_bytes(b"")
        with pytest.raises(ValueError):
            DefectMap.from_bytes(b"XX1\x00" + b"\x00" * 12)
        good = perfect_map(3, 3).to_bytes()
        with pytest.raises(ValueError):
            DefectMap.from_bytes(good + b"\x00\x00\x00\x00\x01")

    def test_from_bytes_rejects_duplicate_records(self):
        one = DefectMap(3, 3, {(0, 1): CrosspointState.STUCK_OPEN})
        payload = bytearray(one.to_bytes())
        # claim two records, append a second record for the same index
        payload[12:16] = (2).to_bytes(4, "little")
        payload += payload[16:21]
        with pytest.raises(ValueError, match="duplicate"):
            DefectMap.from_bytes(bytes(payload))


class TestFabric:
    def test_wired_and_readout(self):
        fabric = CrossbarFabric(2, 3)
        program = [[True, True, False], [False, False, True]]
        outputs = fabric.evaluate(program, [True, True, False])
        assert outputs == [True, False]

    def test_empty_row_reads_one(self):
        fabric = CrossbarFabric(1, 2)
        assert fabric.evaluate([[False, False]], [False, False]) == [True]

    def test_dimension_validation(self):
        fabric = CrossbarFabric(2, 2)
        with pytest.raises(ValueError):
            fabric.evaluate([[True, True]], [True, True])
        with pytest.raises(ValueError):
            fabric.evaluate([[True, True], [True, True]], [True])

    def test_crosspoint_stuck_open_effect(self):
        fabric = CrossbarFabric(1, 2)
        program = [[True, True]]
        vector = [False, True]
        assert fabric.evaluate(program, vector) == [False]
        assert fabric.evaluate(program, vector,
                               fault=CrosspointStuckOpen(0, 0)) == [True]

    def test_crosspoint_stuck_closed_effect(self):
        fabric = CrossbarFabric(1, 2)
        program = [[False, True]]
        vector = [False, True]
        assert fabric.evaluate(program, vector) == [True]
        assert fabric.evaluate(program, vector,
                               fault=CrosspointStuckClosed(0, 0)) == [False]

    def test_line_faults(self):
        fabric = CrossbarFabric(2, 2)
        program = [[True, False], [False, True]]
        vector = [True, False]
        assert fabric.evaluate(program, vector) == [True, False]
        assert fabric.evaluate(program, vector,
                               fault=LineStuckAt("row", 0, False)) == [False, False]
        assert fabric.evaluate(program, vector,
                               fault=LineStuckAt("col", 1, True)) == [True, True]

    def test_bridge_faults_wired_and(self):
        fabric = CrossbarFabric(2, 2)
        program = [[True, False], [False, True]]
        vector = [True, False]
        # column bridge: both inputs read 1 AND 0 = 0
        assert fabric.evaluate(program, vector,
                               fault=BridgeFault("col", 0)) == [False, False]
        # row bridge: outputs (1, 0) both read 0
        assert fabric.evaluate(program, vector,
                               fault=BridgeFault("row", 0)) == [False, False]

    def test_defect_map_overlay(self):
        fabric = CrossbarFabric(1, 2)
        program = [[True, True]]
        defect = DefectMap(1, 2, {(0, 0): CrosspointState.STUCK_OPEN})
        assert fabric.evaluate(program, [False, True]) == [False]
        assert fabric.evaluate(program, [False, True], defect_map=defect) == [True]

    def test_all_single_faults_count(self):
        faults = all_single_faults(3, 4)
        # 2*12 crosspoint + 2*3 row SA + 2*4 col SA + 3 col bridges + 2 row bridges
        assert len(faults) == 24 + 6 + 8 + 3 + 2

    def test_detects_requires_difference(self):
        fabric = CrossbarFabric(1, 2)
        program = [[True, False]]
        # dormant: stuck-open at an unprogrammed crosspoint
        assert not fabric.detects(program, [True, True], CrosspointStuckOpen(0, 1))
