"""Tests for grid geometry, percolation and path enumeration."""

import random

from hypothesis import given, settings, strategies as st

from repro.crossbar import (
    DisjointSet,
    count_top_bottom_paths,
    enumerate_left_right_paths_8,
    enumerate_top_bottom_paths,
    left_right_blocked_8,
    neighbors4,
    neighbors8,
    percolation_duality_holds,
    top_bottom_connected,
)


class TestGeometry:
    def test_neighbors4_corner(self):
        assert sorted(neighbors4(3, 3, 0, 0)) == [(0, 1), (1, 0)]

    def test_neighbors8_center(self):
        assert len(list(neighbors8(3, 3, 1, 1))) == 8

    def test_disjoint_set(self):
        ds = DisjointSet(5)
        ds.union(0, 1)
        ds.union(3, 4)
        assert ds.connected(0, 1)
        assert not ds.connected(1, 3)
        ds.union(1, 3)
        assert ds.connected(0, 4)


class TestPercolation:
    def test_full_grid_connected(self):
        grid = [[True] * 3 for _ in range(3)]
        assert top_bottom_connected(grid)

    def test_empty_grid_disconnected(self):
        grid = [[False] * 3 for _ in range(3)]
        assert not top_bottom_connected(grid)
        assert left_right_blocked_8(grid)

    def test_single_column_path(self):
        grid = [
            [False, True, False],
            [False, True, False],
            [False, True, False],
        ]
        assert top_bottom_connected(grid)

    def test_diagonal_does_not_conduct(self):
        # 4-adjacency: a diagonal chain of ON sites does not connect.
        grid = [
            [True, False, False],
            [False, True, False],
            [False, False, True],
        ]
        assert not top_bottom_connected(grid)
        # ...but its OFF complement blocks via 8-adjacency
        assert left_right_blocked_8(grid)

    def test_snake_path(self):
        grid = [
            [True, True, False],
            [False, True, False],
            [False, True, True],
        ]
        assert top_bottom_connected(grid)

    def test_one_by_one(self):
        assert top_bottom_connected([[True]])
        assert not top_bottom_connected([[False]])

    @given(st.lists(st.lists(st.booleans(), min_size=4, max_size=4),
                    min_size=4, max_size=4))
    @settings(max_examples=300)
    def test_percolation_duality(self, grid):
        assert percolation_duality_holds(grid)

    @given(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=5),
           st.integers())
    @settings(max_examples=100)
    def test_percolation_duality_rectangles(self, rows, cols, seed):
        rng = random.Random(seed)
        grid = [[rng.random() < 0.5 for _ in range(cols)] for _ in range(rows)]
        assert percolation_duality_holds(grid)


class TestPathEnumeration:
    def test_single_row_paths(self):
        paths = list(enumerate_top_bottom_paths(1, 3))
        assert sorted(paths) == [((0, 0),), ((0, 1),), ((0, 2),)]

    def test_2x2_paths(self):
        # Only the two straight columns survive pruning: a path stops at its
        # first bottom-row contact, so dog-legs along the bottom row (whose
        # products would be absorbed anyway) are never emitted.
        paths = set(enumerate_top_bottom_paths(2, 2))
        assert paths == {((0, 0), (1, 0)), ((0, 1), (1, 1))}
        assert count_top_bottom_paths(2, 2) == 2

    def test_3x2_dogleg_present(self):
        # In a 3x2 grid the mid-row lateral dog-leg is a genuine new path.
        paths = set(enumerate_top_bottom_paths(3, 2))
        assert ((0, 0), (1, 0), (1, 1), (2, 1)) in paths

    def test_column_counts_3x2(self):
        # 3x2 grid: enumerate and sanity-check every path is valid.
        paths = list(enumerate_top_bottom_paths(3, 2))
        for path in paths:
            assert path[0][0] == 0 and path[-1][0] == 2
            assert len(set(path)) == len(path)
            for (r1, c1), (r2, c2) in zip(path, path[1:]):
                assert abs(r1 - r2) + abs(c1 - c2) == 1
                assert r2 != 0  # pruning: never re-enter the top row
            # only the final site touches the bottom row
            assert all(r != 2 for r, _ in path[:-1])

    def test_max_paths_caps(self):
        assert len(list(enumerate_top_bottom_paths(3, 3, max_paths=5))) == 5

    def test_paths_witness_connectivity(self):
        # for random grids: top-bottom connected iff some enumerated path
        # is fully ON (path semantics == percolation semantics)
        rng = random.Random(7)
        paths = list(enumerate_top_bottom_paths(3, 3))
        for _ in range(80):
            grid = [[rng.random() < 0.55 for _ in range(3)] for _ in range(3)]
            via_paths = any(
                all(grid[r][c] for r, c in path) for path in paths
            )
            assert via_paths == top_bottom_connected(grid)

    def test_lr_paths_witness_blocking(self):
        rng = random.Random(11)
        paths = list(enumerate_left_right_paths_8(3, 3))
        for _ in range(80):
            grid = [[rng.random() < 0.5 for _ in range(3)] for _ in range(3)]
            via_paths = any(
                all(not grid[r][c] for r, c in path) for path in paths
            )
            assert via_paths == left_right_blocked_8(grid)

    def test_empty_grid_yields_nothing(self):
        assert list(enumerate_top_bottom_paths(0, 3)) == []
        assert list(enumerate_left_right_paths_8(3, 0)) == []
