"""Tests for repro.grid: configs, the claim protocol, workers, CLI, server.

The claim-protocol tests drive :class:`repro.engine.store.JsonStore`
directly with injectable clocks (no real waiting); the end-to-end tests
use real worker subprocesses on a shared store file, including a SIGKILL
mid-sweep followed by ``grid resume``.
"""

import json
import signal
import sqlite3
import subprocess
import sys
import threading
import time

import pytest

from repro.engine import JsonStore
from repro.engine import store as store_module
from repro.eval.cli import main as cli_main
from repro.faultlab import CampaignSpec, run_campaign
from repro.faultlab import campaign as faultsim_campaign
from repro.grid import (
    GridConfig,
    GridConfigError,
    GridPointError,
    config_from_dict,
    export_rows,
    families,
    grid_id_for,
    grid_status,
    iter_grid_points,
    load_config,
    plan,
    point_key,
    release_claims,
    work_loop,
)
from repro.obs import metrics


def _bench_config(**overrides):
    """A cheap grid (SOP-metric extraction) for protocol/runner tests."""
    data = {
        "name": "t",
        "family": "bench",
        "points": [{"bench": "xnor2"}, {"bench": "xor3"}, {"bench": "maj3"}],
    }
    data.update(overrides)
    return config_from_dict(data)


#: Sampling parameters shared by the grid/campaign bit-identity tests.
_FAULTSIM_PARAMS = dict(trials=40, seed=3, batch_size=16,
                        stuck_open_fraction=0.8)


def _faultsim_config(densities=(0.05, 0.2), n=6, **overrides):
    data = {
        "name": "fs",
        "family": "faultsim",
        "grid": {"density": list(densities)},
        "fixed": {"n": n, **_FAULTSIM_PARAMS},
    }
    data.update(overrides)
    return config_from_dict(data)


def _faultsim_spec(densities=(0.05, 0.2), n=6, **overrides):
    params = dict(n_values=(n,), k_values=(0,), densities=tuple(densities),
                  **_FAULTSIM_PARAMS)
    params.update(overrides)
    return CampaignSpec(**params)


class TestGridConfig:
    def test_cartesian_expansion_order_and_fixed_merge(self):
        config = config_from_dict({
            "name": "g", "family": "bench",
            "grid": {"a": [1, 2], "b": ["x", "y"]},
            "fixed": {"c": 7, "a": 99},
        })
        points = config.expand()
        # Last axis varies fastest; axis values win over fixed constants.
        assert points == [
            {"c": 7, "a": 1, "b": "x"}, {"c": 7, "a": 1, "b": "y"},
            {"c": 7, "a": 2, "b": "x"}, {"c": 7, "a": 2, "b": "y"},
        ]

    def test_explicit_points_keep_order(self):
        config = _bench_config()
        assert [p["bench"] for p in config.expand()] == \
            ["xnor2", "xor3", "maj3"]

    def test_validation_errors(self):
        with pytest.raises(GridConfigError, match="unknown family"):
            config_from_dict({"name": "g", "family": "nope",
                              "points": [{}]})
        with pytest.raises(GridConfigError, match="mutually exclusive"):
            config_from_dict({"name": "g", "family": "bench",
                              "grid": {"a": [1]}, "points": [{}]})
        with pytest.raises(GridConfigError, match="axes table"):
            config_from_dict({"name": "g", "family": "bench"})
        with pytest.raises(GridConfigError, match="unknown grid config"):
            config_from_dict({"name": "g", "family": "bench",
                              "points": [{}], "liase_seconds": 5})
        with pytest.raises(GridConfigError, match="non-empty list"):
            config_from_dict({"name": "g", "family": "bench",
                              "grid": {"a": []}})
        with pytest.raises(GridConfigError):
            _bench_config(workers=0)
        with pytest.raises(GridConfigError):
            _bench_config(lease_seconds=-1)

    def test_load_config_json(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(json.dumps({
            "name": "j", "family": "bench", "points": [{"bench": "xnor2"}],
            "lease_seconds": 5,
        }))
        config = load_config(str(path))
        assert config.name == "j"
        assert config.lease_seconds == 5.0  # coerced to the policy type

    def test_load_config_toml_gated_by_interpreter(self, tmp_path):
        path = tmp_path / "grid.toml"
        path.write_text('name = "t"\nfamily = "bench"\n'
                        'points = [{bench = "xnor2"}]\n')
        if sys.version_info < (3, 11):
            with pytest.raises(GridConfigError, match="JSON"):
                load_config(str(path))
        else:
            assert load_config(str(path)).family == "bench"

    def test_bad_json_reports_the_file(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text("{not json")
        with pytest.raises(GridConfigError, match="bad JSON"):
            load_config(str(path))

    def test_grid_id_is_content_addressed(self):
        config = config_from_dict({
            "name": "g", "family": "faultsim",
            "grid": {"n": [6, 8], "density": [0.05]},
            "fixed": _FAULTSIM_PARAMS,
        })
        reordered = config_from_dict({
            "name": "g", "family": "faultsim",
            "grid": {"density": [0.05], "n": [6, 8]},
            "fixed": _FAULTSIM_PARAMS,
        })
        keys = [point_key("faultsim", p) for p in config.expand()]
        keys2 = [point_key("faultsim", p) for p in reordered.expand()]
        assert grid_id_for(config, keys) == grid_id_for(reordered, keys2)
        smaller = config_from_dict({
            "name": "g", "family": "faultsim",
            "grid": {"n": [6], "density": [0.05]},
            "fixed": _FAULTSIM_PARAMS,
        })
        keys3 = [point_key("faultsim", p) for p in smaller.expand()]
        assert grid_id_for(smaller, keys3) != grid_id_for(config, keys)


class TestFamilies:
    def test_faultsim_key_is_the_campaign_point_key(self):
        params = {"n": 6, "density": 0.05, **_FAULTSIM_PARAMS}
        point = faultsim_campaign.point_from_params(params)
        assert point_key("faultsim", params) == point.key()

    def test_missing_required_params_raise(self):
        with pytest.raises(GridPointError, match="density"):
            point_key("faultsim", {"n": 6})
        with pytest.raises(GridPointError, match="bench"):
            point_key("varsweep", {"sigma": 0.2})
        with pytest.raises(GridPointError):
            point_key("bench", {"bench": "no-such-bench"})

    def test_unknown_family_raises_config_error(self):
        with pytest.raises(GridConfigError, match="unknown family"):
            point_key("mystery", {})

    def test_bench_compute_matches_sop_metrics(self):
        from repro.eval.benchsuite import by_name

        payload = families.compute("bench", {"bench": "xnor2"})
        expected = by_name("xnor2").function.sop_metrics()
        assert payload == {"bench": "xnor2", **expected}
        assert families.validate_payload("bench", {"bench": "xnor2"},
                                         payload)
        assert not families.validate_payload("bench", {"bench": "xnor2"},
                                             {"bench": "xnor2"})

    def test_synthesis_compute_reports_portfolio_outcomes(self):
        params = {"bench": "xnor2", "strategies": "dual,optimal"}
        payload = families.compute("synthesis", params)
        assert payload["bench"] == "xnor2"
        assert payload["rows"] * payload["cols"] == payload["area"]
        assert {o["strategy"] for o in payload["outcomes"]} == \
            {"dual", "optimal"}
        assert families.validate_payload("synthesis", params, payload)
        with pytest.raises(GridPointError, match="unknown strategies"):
            point_key("synthesis", {"bench": "xnor2",
                                    "strategies": "alchemy"})


class TestClaimProtocol:
    def _seed(self, store, keys=("p1", "p2"), grid_id="g"):
        store.grid_add_points(grid_id,
                              [(key, {"k": key}, None) for key in keys])
        return grid_id

    def test_claim_complete_cycle(self):
        with JsonStore() as store:
            grid_id = self._seed(store)
            row = store.grid_claim(grid_id, "wA", 60.0)
            assert (row.point_key, row.status, row.worker, row.attempts) \
                == ("p1", "claimed", "wA", 1)
            assert store.grid_complete(grid_id, "p1", "wA", {"v": 1})
            done = store.grid_get(grid_id, "p1")
            assert done.status == "done" and done.result == {"v": 1}
            assert done.finished_at is not None
            # Next claim hands out the remaining row, then nothing.
            assert store.grid_claim(grid_id, "wA", 60.0).point_key == "p2"
            assert store.grid_claim(grid_id, "wA", 60.0) is None

    def test_complete_is_worker_guarded(self):
        with JsonStore() as store:
            grid_id = self._seed(store, keys=("p1",))
            store.grid_claim(grid_id, "wA", 60.0)
            assert not store.grid_complete(grid_id, "p1", "wB", {"v": 2})
            assert store.grid_get(grid_id, "p1").status == "claimed"
            assert store.grid_complete(grid_id, "p1", "wA", {"v": 1})

    def test_lease_expiry_returns_row_to_pending(self):
        with JsonStore() as store:
            grid_id = self._seed(store, keys=("p1",))
            store.grid_claim(grid_id, "wA", 10.0, now=100.0)
            # Within the lease nothing is claimable.
            assert store.grid_claim(grid_id, "wB", 10.0, now=105.0) is None
            # Past the deadline the sweep frees the row and wB claims it.
            row = store.grid_claim(grid_id, "wB", 10.0, now=111.0)
            assert (row.point_key, row.worker, row.attempts) == \
                ("p1", "wB", 2)
            # wA's late answer is discarded; wB's lands.
            assert not store.grid_complete(grid_id, "p1", "wA", {"v": "A"})
            assert store.grid_complete(grid_id, "p1", "wB", {"v": "B"})
            assert store.grid_get(grid_id, "p1").result == {"v": "B"}

    def test_lease_expiry_at_max_attempts_fails_the_row(self):
        with JsonStore() as store:
            grid_id = self._seed(store, keys=("p1",))
            now = 0.0
            for attempt in range(1, 3):
                row = store.grid_claim(grid_id, f"w{attempt}", 10.0,
                                       max_attempts=2, now=now)
                assert row is not None and row.attempts == attempt
                now += 11.0
            # Third sweep: attempts exhausted, the row is terminal.
            assert store.grid_claim(grid_id, "w3", 10.0, max_attempts=2,
                                    now=now) is None
            row = store.grid_get(grid_id, "p1")
            assert row.status == "failed"
            assert "lease expired" in row.error

    def test_grid_fail_retries_then_lands_failed(self):
        with JsonStore() as store:
            grid_id = self._seed(store, keys=("p1",))
            store.grid_claim(grid_id, "wA", 60.0)
            assert store.grid_fail(grid_id, "p1", "wA", "boom",
                                   max_attempts=2) == "pending"
            assert store.grid_get(grid_id, "p1").error == "boom"
            store.grid_claim(grid_id, "wA", 60.0)
            assert store.grid_fail(grid_id, "p1", "wA", "boom again",
                                   max_attempts=2) == "failed"
            assert store.grid_get(grid_id, "p1").status == "failed"
            # A worker that lost the row cannot fail it.
            assert store.grid_fail(grid_id, "p1", "wA", "late",
                                   max_attempts=2) is None

    def test_release_claims_preserves_attempts(self):
        with JsonStore() as store:
            grid_id = self._seed(store)
            store.grid_claim(grid_id, "wA", 60.0)
            store.grid_claim(grid_id, "wA", 60.0)
            assert store.grid_release_claims(grid_id) == 2
            rows = store.grid_rows_for(grid_id, status="pending")
            assert [row.attempts for row in rows] == [1, 1]
            assert all(row.worker is None and row.lease_deadline is None
                       for row in rows)

    def test_add_points_is_idempotent_and_upgrades_known_answers(self):
        with JsonStore() as store:
            assert store.grid_add_points(
                "g", [("p1", {}, None), ("p2", {}, {"v": 2})]) == 2
            assert store.grid_add_points(
                "g", [("p1", {}, None), ("p2", {}, {"v": 2})]) == 0
            cached = store.grid_get("g", "p2")
            assert cached.status == "done" and cached.worker == "store"
            # A pending row whose answer the store has since learned is
            # upgraded in place on the next plan.
            assert store.grid_add_points("g", [("p1", {}, {"v": 1})]) == 0
            upgraded = store.grid_get("g", "p1")
            assert upgraded.status == "done" and upgraded.result == {"v": 1}
            # Terminal rows are never overwritten by a re-plan.
            assert store.grid_add_points("g", [("p2", {}, {"v": 99})]) == 0
            assert store.grid_get("g", "p2").result == {"v": 2}


class TestStoreContention:
    def test_claim_blocks_in_sqlite_never_sleeps_in_python(
            self, tmp_path, monkeypatch):
        """Two writers, one store file: the claim path must not spin-wait.

        Writer A holds the SQLite write lock in an open IMMEDIATE
        transaction while writer B claims.  B must block inside SQLite's
        busy handler and win the row the moment A commits — with zero
        Python-level ``time.sleep`` calls anywhere in the interpreter.
        """
        path = str(tmp_path / "store.sqlite")
        real_sleep = time.sleep
        with JsonStore(path) as a, JsonStore(path) as b:
            a.grid_add_points("g", [("p1", {}, None)])
            sleeps = []
            monkeypatch.setattr(time, "sleep",
                                lambda seconds: sleeps.append(seconds))
            a._conn.execute("BEGIN IMMEDIATE")
            claimed = {}
            thread = threading.Thread(
                target=lambda: claimed.update(
                    row=b.grid_claim("g", "wB", 60.0)))
            thread.start()
            real_sleep(0.3)  # let B hit the held lock
            a._conn.execute("COMMIT")
            thread.join(timeout=store_module._BUSY_TIMEOUT + 5)
            assert not thread.is_alive()
            assert claimed["row"] is not None
            assert claimed["row"].point_key == "p1"
            assert sleeps == []

    def test_busy_counter_uses_the_store_busy_series(self, monkeypatch):
        """Transient lock noise lands in ``nanoxbar_store_busy_total``."""
        monkeypatch.setattr(time, "sleep", lambda seconds: None)
        retried = store_module._busy_counter("write", "retried")
        claim_exhausted = store_module._busy_counter("claim", "exhausted")
        before_retry = retried.value
        before_claim = claim_exhausted.value

        class FlakyConn:
            def __init__(self, conn, failures):
                self._conn = conn
                self.failures = failures

            def _maybe_fail(self):
                if self.failures:
                    self.failures -= 1
                    raise sqlite3.OperationalError("database is locked")

            def execute(self, *args):
                self._maybe_fail()
                return self._conn.execute(*args)

            def executemany(self, *args):
                self._maybe_fail()
                return self._conn.executemany(*args)

            def __getattr__(self, name):
                return getattr(self._conn, name)

        with JsonStore() as store:
            store.grid_add_points("g", [("p1", {}, None)])
            store._conn = FlakyConn(store._conn, failures=1)
            store.put("k", {"v": 1})  # one transient failure, then retried
            assert retried.value == before_retry + 1
            # The claim path surfaces transient errors immediately
            # (exhausted), it never enters a Python retry loop.
            store._conn.failures = 1
            with pytest.raises(sqlite3.OperationalError):
                store.grid_claim("g", "wA", 60.0)
            assert claim_exhausted.value == before_claim + 1
        text = metrics.registry().render_prometheus()
        assert 'nanoxbar_store_busy_total{op="write",outcome="retried"}' \
            in text
        assert 'nanoxbar_store_busy_total{op="claim",outcome="exhausted"}' \
            in text


class TestRunner:
    def test_plan_is_idempotent(self):
        config = _bench_config()
        with JsonStore() as store:
            grid_id, keys, added = plan(config, store)
            assert added == 3 and len(keys) == 3
            again_id, _, added_again = plan(config, store)
            assert again_id == grid_id and added_again == 0

    def test_work_loop_drains_and_mirrors_into_json_store(self):
        config = _bench_config()
        with JsonStore() as store:
            grid_id, keys, _ = plan(config, store)
            tally = work_loop(config, grid_id, store, "w0")
            assert tally["done"] == 3
            status = grid_status(store, grid_id)
            assert status["finished"] and status["counts"] == {"done": 3}
            # Results are mirrored under the content-addressed keys.
            for key, row in zip(keys, store.grid_rows_for(grid_id)):
                assert store.get(key) == row.result
            # A re-plan of the same config finds everything answered.
            fresh_id, _, _ = plan(_bench_config(name="other"), store)
            assert fresh_id != grid_id
            rows = store.grid_rows_for(fresh_id)
            assert all(row.status == "done" and row.worker == "store"
                       for row in rows)

    def test_two_workers_never_double_execute_a_point(self, monkeypatch):
        config = _bench_config(points=[
            {"bench": name} for name in
            ("xnor2", "xor3", "maj3", "mux2", "eq2", "gt2")])
        computed = []
        real_compute = families.compute

        def counting_compute(family, params, processes=1):
            computed.append(params["bench"])
            return real_compute(family, params, processes)

        monkeypatch.setattr(families, "compute", counting_compute)
        with JsonStore() as store:
            grid_id, _, _ = plan(config, store)
            tallies = {}

            def drain(worker):
                tallies[worker] = work_loop(config, grid_id, store, worker)

            threads = [threading.Thread(target=drain, args=(worker,))
                       for worker in ("wA", "wB")]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            # Every point computed exactly once across both workers.
            assert sorted(computed) == sorted(
                p["bench"] for p in config.expand())
            assert tallies["wA"]["done"] + tallies["wB"]["done"] == 6
            assert grid_status(store, grid_id)["finished"]

    def test_failing_points_retry_then_land_failed(self, monkeypatch):
        config = _bench_config(points=[{"bench": "xnor2"}], max_attempts=2)

        def exploding_compute(family, params, processes=1):
            raise RuntimeError("kernel exploded")

        monkeypatch.setattr(families, "compute", exploding_compute)
        with JsonStore() as store:
            grid_id, _, _ = plan(config, store)
            tally = work_loop(config, grid_id, store, "w0")
            assert tally == {"done": 0, "stale": 0, "pending": 1,
                             "failed": 1}
            row = store.grid_rows_for(grid_id)[0]
            assert row.status == "failed" and row.attempts == 2
            assert "kernel exploded" in row.error
            assert not grid_status(store, grid_id)["counts"].get("done")

    def test_iter_grid_points_yields_cached_then_computed(self):
        config = _bench_config()
        with JsonStore() as store:
            grid_id, keys, _ = plan(config, store)
            work_loop(config, grid_id, store, "w0", max_points=1)
            seen = list(iter_grid_points(config, store))
            assert [verdict for _, verdict in seen] == \
                ["cached", "done", "done"]
            assert {row.point_key for row, _ in seen} == set(keys)
            assert all(row.result is not None for row, _ in seen)


class TestCampaignBitIdentity:
    def test_grid_then_campaign_shares_every_answer(self):
        config = _faultsim_config()
        spec = _faultsim_spec()
        with JsonStore() as store:
            grid_id, keys, _ = plan(config, store)
            work_loop(config, grid_id, store, "w0")
            result = run_campaign(spec, store=store)
            assert result.cache_hits == 2 and result.trials_sampled == 0
            by_key = {row.point_key: row for row
                      in store.grid_rows_for(grid_id)}
            for estimate in result.estimates:
                row = by_key[estimate.point.key()]
                assert row.result == \
                    faultsim_campaign.payload_for(estimate)

    def test_campaign_then_grid_plans_straight_to_done(self):
        config = _faultsim_config()
        spec = _faultsim_spec()
        with JsonStore() as store:
            result = run_campaign(spec, store=store)
            assert result.cache_hits == 0
            grid_id, _, _ = plan(config, store)
            rows = store.grid_rows_for(grid_id)
            assert all(row.status == "done" and row.worker == "store"
                       for row in rows)
            by_key = {e.point.key(): e for e in result.estimates}
            for row in rows:
                assert row.result == faultsim_campaign.payload_for(
                    by_key[row.point_key])

    def test_grid_recompute_after_lease_expiry_is_bit_identical(self):
        config = _faultsim_config(densities=(0.05,))
        with JsonStore() as store:
            grid_id, (key,), _ = plan(config, store)
            # First worker claims, computes, but its lease expired before
            # it published — its answer is discarded.
            stale = store.grid_claim(grid_id, "wA", 60.0, now=0.0)
            stale_payload = families.compute("faultsim", stale.params)
            fresh = store.grid_claim(grid_id, "wB", 60.0, now=100.0)
            assert fresh is not None and fresh.worker == "wB"
            assert not store.grid_complete(grid_id, key, "wA",
                                           stale_payload)
            fresh_payload = families.compute("faultsim", fresh.params)
            assert store.grid_complete(grid_id, key, "wB", fresh_payload)
            # Content-seeded RNG: the recompute is bit-identical anyway.
            assert fresh_payload == stale_payload


def _write_config(tmp_path, config_dict, name="grid.json"):
    path = tmp_path / name
    path.write_text(json.dumps(config_dict))
    return str(path)


class TestCli:
    def _config_path(self, tmp_path, **overrides):
        data = {
            "name": "cli", "family": "bench",
            "points": [{"bench": "xnor2"}, {"bench": "xor3"}],
        }
        data.update(overrides)
        return _write_config(tmp_path, data)

    def test_plan_run_status_export_roundtrip(self, tmp_path, capsys):
        config = self._config_path(tmp_path)
        store = str(tmp_path / "store.sqlite")
        assert cli_main(["grid", "plan", config, "--store", store,
                         "--json"]) == 0
        planned = json.loads(capsys.readouterr().out)
        assert planned["added"] == 2 and planned["points"] == 2
        assert cli_main(["grid", "run", config, "--store", store,
                         "--json"]) == 0
        ran = json.loads(capsys.readouterr().out)
        assert ran["finished"] and ran["counts"] == {"done": 2}
        assert cli_main(["grid", "status", config, "--store", store,
                         "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["finished"]
        out_path = tmp_path / "rows.json"
        assert cli_main(["grid", "export", config, "--store", store,
                         "-o", str(out_path)]) == 0
        exported = json.loads(out_path.read_text())
        assert len(exported["rows"]) == 2
        assert all(row["status"] == "done" for row in exported["rows"])

    def test_missing_config_exits_2(self, tmp_path, capsys):
        assert cli_main(["grid", "plan",
                         str(tmp_path / "absent.json")]) == 2
        assert "error" in capsys.readouterr().err

    def test_malformed_config_exits_2(self, tmp_path, capsys):
        config = self._config_path(tmp_path, family="mystery")
        assert cli_main(["grid", "run", config,
                         "--store", str(tmp_path / "s.sqlite")]) == 2
        assert "unknown family" in capsys.readouterr().err

    def test_failed_points_exit_1(self, tmp_path, monkeypatch, capsys):
        config = self._config_path(tmp_path, max_attempts=1)
        monkeypatch.setattr(
            families, "compute",
            lambda family, params, processes=1:
            (_ for _ in ()).throw(RuntimeError("boom")))
        assert cli_main(["grid", "run", config,
                         "--store", str(tmp_path / "s.sqlite")]) == 1

    def test_store_default_comes_from_the_config(self, tmp_path, capsys,
                                                 monkeypatch):
        monkeypatch.chdir(tmp_path)
        config = self._config_path(
            tmp_path, store=str(tmp_path / "from-config.sqlite"))
        assert cli_main(["grid", "run", config, "--json"]) == 0
        assert (tmp_path / "from-config.sqlite").exists()


class TestMultiProcess:
    def test_two_worker_processes_share_one_store(self, tmp_path, capsys):
        config_path = _write_config(tmp_path, {
            "name": "mp", "family": "faultsim", "workers": 2,
            "grid": {"density": [0.02, 0.05, 0.1, 0.2]},
            "fixed": {"n": 6, **_FAULTSIM_PARAMS},
        })
        store_path = str(tmp_path / "store.sqlite")
        assert cli_main(["grid", "run", config_path, "--store", store_path,
                         "--workers", "2", "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["finished"] and status["counts"] == {"done": 4}
        # Bit-identical to the single-process campaign on a fresh store.
        spec = _faultsim_spec(densities=(0.02, 0.05, 0.1, 0.2))
        direct = run_campaign(spec)
        with JsonStore(store_path) as store:
            rows = store.grid_rows_for(status["grid_id"])
            by_key = {row.point_key: row for row in rows}
        for estimate in direct.estimates:
            row = by_key[estimate.point.key()]
            assert row.result == faultsim_campaign.payload_for(estimate)

    def test_sigkill_then_resume_completes_without_recompute(
            self, tmp_path):
        """Kill a worker mid-sweep; ``grid resume`` finishes the grid.

        Done rows must keep their original results and timestamps (no
        recompute), and the completed grid must be bit-identical to a
        plain single-process ``run_campaign`` of the same points.
        """
        densities = [round(0.02 + 0.02 * i, 2) for i in range(6)]
        heavy = dict(_FAULTSIM_PARAMS, trials=30000, batch_size=3000)
        config_dict = {
            "name": "kill", "family": "faultsim",
            "grid": {"density": densities},
            "fixed": {"n": 10, **heavy},
        }
        config_path = _write_config(tmp_path, config_dict)
        config = config_from_dict(config_dict)
        store_path = str(tmp_path / "store.sqlite")
        with JsonStore(store_path) as store:
            grid_id, keys, _ = plan(config, store)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.grid.worker",
             "--config", config_path, "--store", store_path,
             "--grid-id", grid_id, "--worker-id", "victim"])
        try:
            deadline = time.monotonic() + 120.0
            with JsonStore(store_path) as store:
                while time.monotonic() < deadline:
                    if store.grid_counts(grid_id).get("done", 0) >= 1:
                        break
                    time.sleep(0.02)
                else:
                    pytest.fail("worker made no progress before kill")
                proc.send_signal(signal.SIGKILL)
                proc.wait(timeout=30)
                done_before = {
                    row.point_key: (row.finished_at, row.result)
                    for row in store.grid_rows_for(grid_id, status="done")}
                assert done_before, "kill landed before any point finished"
                # resume: free the victim's stale claims, drain in-process.
                release_claims(store, grid_id)
                work_loop(config, grid_id, store, "resumer")
                status = grid_status(store, grid_id)
                assert status["finished"]
                assert status["counts"] == {"done": len(keys)}
                rows = store.grid_rows_for(grid_id)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
        # Pre-kill answers were not recomputed: same timestamps, results.
        for row in rows:
            if row.point_key in done_before:
                assert (row.finished_at, row.result) == \
                    done_before[row.point_key]
        # And the whole grid matches the plain campaign bit-for-bit.
        spec = _faultsim_spec(densities=densities, n=10, **{
            k: heavy[k] for k in ("trials", "batch_size")})
        direct = run_campaign(spec)
        by_key = {row.point_key: row for row in rows}
        for estimate in direct.estimates:
            assert by_key[estimate.point.key()].result == \
                faultsim_campaign.payload_for(estimate)


class TestServerGrid:
    def test_grid_submission_streams_terminal_rows(self):
        from repro.server.protocol import parse_submission
        from repro.server.worker import WorkerBridge

        payload = {"kind": "grid", "config": {
            "name": "served", "family": "bench",
            "points": [{"bench": "xnor2"}, {"bench": "xor3"}],
        }}
        submission = parse_submission(payload)
        assert submission.kind == "grid"
        assert submission.points_total == 2
        assert submission.echo["family"] == "bench"
        # Identical configs coalesce; different ones do not.
        assert parse_submission(payload).coalesce_key == \
            submission.coalesce_key
        other = parse_submission({"kind": "grid", "config": {
            "name": "served", "family": "bench",
            "points": [{"bench": "maj3"}]}})
        assert other.coalesce_key != submission.coalesce_key

        events = []
        bridge = WorkerBridge(cache_path=":memory:", processes=1)
        try:
            bridge.run_submission(
                submission, lambda kind, record: events.append(
                    (kind, record)))
        finally:
            bridge.close()
        kinds = [kind for kind, _ in events]
        assert kinds[0] == "running" and kinds[-1] == "done"
        points = [record for kind, record in events if kind == "point"]
        assert len(points) == 2
        assert all(record["status"] == "done" and not record["cache_hit"]
                   for record in points)
        assert all(record["result"] is not None for record in points)

    def test_grid_submission_rejects_bad_configs(self):
        from repro.server.protocol import ProtocolError, parse_submission

        with pytest.raises(ProtocolError):
            parse_submission({"kind": "grid"})
        with pytest.raises(ProtocolError):
            parse_submission({"kind": "grid",
                              "config": {"name": "x", "family": "nope",
                                         "points": [{}]}})


class TestObservability:
    def test_grid_series_follow_the_naming_scheme(self):
        config = _bench_config(points=[{"bench": "mux2"}])
        with JsonStore() as store:
            grid_id, _, _ = plan(config, store)
            work_loop(config, grid_id, store, "w0")
        text = metrics.registry().render_prometheus()
        assert 'nanoxbar_grid_points_total{status="claimed"}' in text
        assert 'nanoxbar_grid_points_total{status="done"}' in text
        assert 'nanoxbar_grid_point_seconds_count{family="bench"}' in text

    def test_watchdog_covers_grid_failures(self):
        from repro.obs.health import default_server_rules

        rules = {rule.name: rule for rule in default_server_rules()}
        rule = rules["grid-failure-rate"]
        assert rule.series == "nanoxbar_grid_points_total"
        assert rule.label_filter == {"status": "failed"}
