"""Tests for the diode, FET and lattice array models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.boolean import BooleanFunction, Cover, Literal, TruthTable, minimize
from repro.crossbar import (
    DiodeCrossbar,
    FetCrossbar,
    Lattice,
    diode_size_formula,
    fet_size_formula,
)


def tables(n=4):
    return st.integers(min_value=1, max_value=(1 << (1 << n)) - 2).map(
        lambda bits: TruthTable.from_bits(n, bits)
    )


class TestDiodeCrossbar:
    def test_paper_example_size(self):
        # f = x1 x2 + x1' x2' -> 2 x 5 diode array (Section III-A)
        cover = Cover.from_strings(["11", "00"])
        xbar = DiodeCrossbar(cover)
        assert xbar.shape == (2, 5)
        assert xbar.shape == diode_size_formula(cover)

    def test_semantics_match_cover(self):
        cover = Cover.from_strings(["1-0", "011"])
        xbar = DiodeCrossbar(cover)
        assert xbar.to_truth_table() == cover.to_truth_table()

    def test_rejects_empty_cover(self):
        with pytest.raises(ValueError):
            DiodeCrossbar(Cover.empty(3))

    def test_programmed_crosspoints(self):
        cover = Cover.from_strings(["11", "00"])
        xbar = DiodeCrossbar(cover)
        # 4 literal diodes + 2 output junctions
        assert xbar.num_crosspoints_programmed == 6

    def test_render_contains_marks(self):
        cover = Cover.from_strings(["11", "00"])
        text = xbar_render = DiodeCrossbar(cover).render()
        assert "X" in text and "out" in text

    def test_connection_override_stuck_open(self):
        # dropping the diode for x1 in product x1&x2 makes the row read x2
        cover = Cover.from_strings(["11"])
        xbar = DiodeCrossbar(cover)

        def stuck_open(r, c, programmed):
            return False if (r, c) == (0, 0) else programmed

        assert xbar.evaluate(0b10, stuck_open)  # x2 alone now drives the row
        assert not xbar.evaluate(0b10)

    @given(tables())
    @settings(max_examples=40, deadline=None)
    def test_implements_minimized_function(self, t):
        cover = minimize(t)
        if cover.num_products == 0:
            return
        xbar = DiodeCrossbar(cover)
        assert xbar.implements(t)
        assert xbar.shape == diode_size_formula(cover)


class TestFetCrossbar:
    def test_paper_example_size(self):
        # f = x1 x2 + x1' x2' and fD = same shape -> 4 x 4 (Section III-A)
        f = BooleanFunction.from_expression("x1 x2 + x1' x2'")
        xbar = FetCrossbar(f.minimized_cover, f.minimized_dual_cover)
        assert xbar.shape == (4, 4)
        assert xbar.shape == fet_size_formula(f.minimized_cover, f.minimized_dual_cover)

    def test_inverter(self):
        f = BooleanFunction.from_expression("x1'")
        xbar = FetCrossbar(f.minimized_cover, f.minimized_dual_cover)
        assert xbar.shape == (1, 2)
        assert xbar.evaluate(0b0) and not xbar.evaluate(0b1)

    def test_rejects_constants(self):
        with pytest.raises(ValueError):
            FetCrossbar(Cover.empty(2), Cover.tautology(2))

    def test_complementary_invariant(self):
        f = BooleanFunction.from_expression("x1 x2 + x3")
        xbar = FetCrossbar(f.minimized_cover, f.minimized_dual_cover)
        assert xbar.is_complementary()

    def test_fault_can_short_the_output(self):
        f = BooleanFunction.from_expression("x1")
        xbar = FetCrossbar(f.minimized_cover, f.minimized_dual_cover)

        def stuck_conducting(plane, col, row, conducting):
            return True if plane == "pulldown" else conducting

        assert xbar.drive_state(0b1, stuck_conducting) == "short"

    def test_render(self):
        f = BooleanFunction.from_expression("x1 x2 + x1' x2'")
        text = FetCrossbar(f.minimized_cover, f.minimized_dual_cover).render()
        assert "P" in text and "N" in text

    @given(tables())
    @settings(max_examples=40, deadline=None)
    def test_implements_and_complementary(self, t):
        f_cover = minimize(t)
        d_cover = minimize(t.dual())
        if not f_cover.num_products or not d_cover.num_products:
            return
        xbar = FetCrossbar(f_cover, d_cover)
        assert xbar.implements(t)
        assert xbar.is_complementary()


class TestLattice:
    def test_fig4_lattice(self):
        """The worked example of Fig. 4: a 3x2 lattice computing
        x1x2x3 + x1x2x5x6 + x2x3x4x5 + x4x5x6 (absorbed terms included)."""
        lattice = Lattice.from_strings(6, ["x1 x4", "x2 x5", "x3 x6"])
        f = BooleanFunction.from_expression(
            "x1 x2 x3 + x1 x2 x5 x6 + x2 x3 x4 x5 + x4 x5 x6"
        )
        assert lattice.implements(f.on)
        assert lattice.shape == (3, 2) and lattice.area == 6

    def test_path_cover_matches_percolation(self):
        lattice = Lattice.from_strings(6, ["x1 x4", "x2 x5", "x3 x6"])
        assert lattice.path_cover().to_truth_table() == lattice.to_truth_table()

    def test_constant_sites(self):
        # column of 1s always conducts; grid of 0s never does
        ones = Lattice(2, [[True], [True]])
        assert ones.to_truth_table().is_tautology()
        zeros = Lattice(2, [[False], [False]])
        assert zeros.to_truth_table().is_contradiction()

    def test_single_site(self):
        lattice = Lattice(1, [[Literal(0, True)]])
        assert lattice.evaluate(1) and not lattice.evaluate(0)

    def test_contradictory_column_never_conducts(self):
        lattice = Lattice.from_strings(1, ["x1", "x1'"])
        assert lattice.to_truth_table().is_contradiction()

    def test_xnor_2x2(self):
        # Section III-B: f = x1 x2 + x1' x2' fits a 2x2 lattice
        lattice = Lattice.from_strings(2, ["x1 x1'", "x2 x2'"])
        f = BooleanFunction.from_expression("x1 x2 + x1' x2'")
        assert lattice.implements(f.on)

    def test_validation(self):
        with pytest.raises(ValueError):
            Lattice(2, [])
        with pytest.raises(ValueError):
            Lattice(2, [[True], [True, False]])
        with pytest.raises(ValueError):
            Lattice(1, [[Literal(3, True)]])
        with pytest.raises(TypeError):
            Lattice(1, [["x1"]])

    def test_site_override_stuck(self):
        lattice = Lattice.from_strings(2, ["x1", "x2"])

        def stuck_on(r, c, value):
            return True

        assert lattice.evaluate(0, stuck_on)
        assert not lattice.evaluate(0)

    def test_transpose_shape(self):
        lattice = Lattice.from_strings(6, ["x1 x4", "x2 x5", "x3 x6"])
        assert lattice.transpose().shape == (2, 3)

    def test_with_site_and_map_sites(self):
        lattice = Lattice.from_strings(2, ["x1", "x2"])
        patched = lattice.with_site(0, 0, True)
        assert patched.site(0, 0) is True
        flipped = lattice.map_sites(
            lambda r, c, s: s.negated() if isinstance(s, Literal) else s
        )
        assert flipped.site(1, 0) == Literal(1, False)

    def test_render(self):
        text = Lattice.from_strings(2, ["x1 x2", "x1' 1"]).render()
        assert "TOP" in text and "BOTTOM" in text and "x1'" in text

    def test_literals_used(self):
        lattice = Lattice.from_strings(2, ["x1 1", "x2 0"])
        assert lattice.literals_used() == {Literal(0, True), Literal(1, True)}
