"""Tests for repro.obs: metrics registry, tracing, logging, profiling."""

import io
import json
import re
import threading

import pytest

from repro.engine.engine import EngineStats
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    clear_spans,
    configure_logging,
    get_logger,
    log_event,
    profiled,
    recent_spans,
    record_span,
    render_span_tree,
    set_enabled,
    span,
)
from repro.obs import quantile_from_counts, registry
from repro.obs.tracing import SPAN_RING_SIZE, add_span_listener, \
    remove_span_listener, set_trace_sink


class TestCountersAndGauges:
    def test_counter_accumulates_and_rejects_negative(self):
        reg = MetricsRegistry()
        counter = reg.counter("c_total", "help")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("g", "help")
        gauge.inc()
        gauge.inc()
        gauge.dec()
        assert gauge.value == 1
        gauge.set(7.5)
        assert gauge.value == 7.5

    def test_same_name_same_labels_shares_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("shared_total", "help", labels={"kind": "x"})
        b = reg.counter("shared_total", "help", kind="x")
        c = reg.counter("shared_total", "help", kind="y")
        assert a is b
        assert a is not c

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("thing_total", "help")
        with pytest.raises(ValueError):
            reg.gauge("thing_total", "help")

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad name", "help")
        with pytest.raises(ValueError):
            reg.counter("ok_total", "help", labels={"bad-label": "x"})


class TestRegistryConcurrency:
    def test_threaded_increments_are_exact(self):
        reg = MetricsRegistry()
        counter = reg.counter("hits_total", "help")
        hist = reg.histogram("lat_seconds", "help")
        gauge = reg.gauge("depth", "help")
        threads, per_thread = 16, 500
        barrier = threading.Barrier(threads)

        def work():
            barrier.wait()
            for i in range(per_thread):
                counter.inc()
                gauge.inc()
                gauge.dec()
                hist.observe(0.001 * (i % 20))

        workers = [threading.Thread(target=work) for _ in range(threads)]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        assert counter.value == threads * per_thread
        assert gauge.value == 0
        assert hist.count == threads * per_thread

    def test_threaded_label_resolution_is_exact(self):
        reg = MetricsRegistry()
        threads = 12
        barrier = threading.Barrier(threads)

        def work(index):
            barrier.wait()
            for _ in range(200):
                reg.counter("fam_total", "help",
                            labels={"worker": str(index % 3)}).inc()

        workers = [threading.Thread(target=work, args=(i,))
                   for i in range(threads)]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        snap = reg.snapshot()["counters"]["fam_total"]
        assert sum(snap.values()) == threads * 200


class TestHistogram:
    def test_quantiles_interpolate_from_buckets(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h_seconds", "help", buckets=(0.1, 1.0, 10.0))
        for _ in range(100):
            hist.observe(0.5)
        # Every sample sits in the (0.1, 1.0] bucket.
        assert 0.1 <= hist.quantile(0.5) <= 1.0
        assert hist.quantile(0.0) == pytest.approx(0.1, abs=0.05)
        assert hist.quantile(1.0) == pytest.approx(1.0)
        assert hist.count == 100
        assert hist.sum == pytest.approx(50.0)

    def test_empty_histogram_quantile_is_zero(self):
        reg = MetricsRegistry()
        hist = reg.histogram("e_seconds", "help")
        assert hist.quantile(0.99) == 0.0

    def test_overflow_lands_in_inf_bucket(self):
        reg = MetricsRegistry()
        hist = reg.histogram("o_seconds", "help", buckets=(0.1,))
        hist.observe(5.0)
        snap = reg.snapshot()["histograms"]["o_seconds"][""]
        assert snap["buckets"]["+Inf"] == 1
        assert snap["count"] == 1


class TestQuantileFromCounts:
    def test_matches_histogram_quantile(self):
        reg = MetricsRegistry()
        bounds = (0.001, 0.01, 0.1, 1.0)
        hist = reg.histogram("q_seconds", "help", buckets=bounds)
        for value in (0.0005, 0.005, 0.005, 0.05, 0.5, 7.0):
            hist.observe(value)
        counts, _sum, _count = hist._state_copy()
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            assert quantile_from_counts(bounds, counts, q) == \
                hist.quantile(q)

    def test_empty_counts_read_zero(self):
        assert quantile_from_counts((0.1, 1.0), [0, 0, 0], 0.99) == 0.0

    def test_interpolates_within_the_owning_bucket(self):
        # 10 samples, all in (1, 2]: every mid quantile interpolates
        # between the bucket's edges.
        value = quantile_from_counts((1.0, 2.0), [0, 10, 0], 0.5)
        assert 1.0 <= value <= 2.0
        assert quantile_from_counts((1.0, 2.0), [0, 10, 0], 1.0) == 2.0

    def test_inf_bucket_clamps_to_last_finite_bound(self):
        assert quantile_from_counts((1.0,), [0, 5], 0.99) == 1.0


class TestSnapshotQuantileConsistency:
    def test_quantiles_ordered_under_concurrent_writes(self):
        # The torn-read shape: quantiles computed from three separate
        # state copies can interleave with writers and come out
        # non-monotonic.  One shared copy keeps p50 <= p90 <= p99
        # regardless of write traffic.
        reg = MetricsRegistry()
        hist = reg.histogram("c_seconds", "help",
                             buckets=(0.001, 0.01, 0.1, 1.0))
        stop = threading.Event()

        def write():
            values = (0.0005, 0.005, 0.05, 0.5, 5.0)
            index = 0
            while not stop.is_set():
                hist.observe(values[index % 5])
                index += 1

        writer = threading.Thread(target=write)
        writer.start()
        try:
            for _ in range(300):
                series = reg.snapshot()["histograms"]["c_seconds"][""]
                assert series["p50"] <= series["p90"] <= series["p99"], \
                    series
        finally:
            stop.set()
            writer.join()


class TestPrometheusExposition:
    LINE = re.compile(
        r"^(?:# (?:HELP|TYPE) .+"
        r"|[a-zA-Z_:][a-zA-Z0-9_:]*(?:\{[^{}]*\})? [^ ]+)$")

    def test_every_line_matches_exposition_grammar(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total", "jobs", labels={"kind": "synthesis"}).inc(3)
        reg.gauge("depth", "queue depth").set(2)
        reg.histogram("wait_seconds", "wait", labels={"kind": "a"}) \
            .observe(0.003)
        text = reg.render_prometheus()
        assert text.endswith("\n")
        for line in text.rstrip("\n").split("\n"):
            assert self.LINE.match(line), line

    def test_histogram_buckets_are_cumulative_and_complete(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat_seconds", "help")
        for value in (0.0007, 0.003, 0.003, 12.0, 100.0):
            hist.observe(value)
        text = reg.render_prometheus()
        counts = [int(m.group(1)) for m in re.finditer(
            r'^lat_seconds_bucket\{le="[^"]+"\} (\d+)$', text, re.M)]
        assert len(counts) == len(DEFAULT_LATENCY_BUCKETS) + 1
        assert counts == sorted(counts)
        assert counts[-1] == 5
        assert re.search(r"^lat_seconds_count 5$", text, re.M)

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("esc_total", "help", labels={"k": 'a"b\\c'}).inc()
        text = reg.render_prometheus()
        assert 'esc_total{k="a\\"b\\\\c"} 1' in text

    def test_help_text_escaped_per_spec(self):
        # 0.0.4 HELP lines escape backslash and newline — a multi-line
        # or backslash-bearing help string must stay one physical line.
        reg = MetricsRegistry()
        reg.counter("multi_total",
                    "first line\nsecond \\ line\r\nthird").inc()
        text = reg.render_prometheus()
        help_lines = [line for line in text.split("\n")
                      if line.startswith("# HELP multi_total")]
        assert help_lines == [
            "# HELP multi_total first line\\nsecond \\\\ line\\nthird"]
        for line in text.rstrip("\n").split("\n"):
            assert self.LINE.match(line), line


class TestEnabledSwitch:
    def test_disable_no_ops_preresolved_handles(self):
        reg = MetricsRegistry()
        counter = reg.counter("t_total", "help")
        hist = reg.histogram("t_seconds", "help")
        counter.inc()
        try:
            set_enabled(False)
            counter.inc(100)
            hist.observe(1.0)
            with span("disabled.block") as handle:
                assert handle.trace_id is None
        finally:
            set_enabled(True)
        counter.inc()
        assert counter.value == 2
        assert hist.count == 0


class TestTracing:
    def setup_method(self):
        clear_spans()

    def test_nested_spans_share_trace_and_parent(self):
        with span("outer") as outer:
            with span("inner") as inner:
                assert inner.trace_id == outer.trace_id
        spans = recent_spans()
        by_name = {s["name"]: s for s in spans}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["inner"]["trace_id"] == by_name["outer"]["trace_id"]
        # Inner completes first; both durations are non-negative.
        assert [s["name"] for s in spans] == ["inner", "outer"]
        assert all(s["duration"] >= 0 for s in spans)

    def test_record_span_defaults_to_ambient_context(self):
        with span("parent") as parent:
            record_span("synthetic", 0.25)
        synthetic = [s for s in recent_spans() if s["name"] == "synthetic"]
        assert synthetic[0]["trace_id"] == parent.trace_id
        assert synthetic[0]["parent_id"] == parent.span_id
        assert synthetic[0]["duration"] == 0.25

    def test_span_records_error_and_reraises(self):
        with pytest.raises(RuntimeError):
            with span("exploding"):
                raise RuntimeError("boom")
        failed = [s for s in recent_spans() if s["name"] == "exploding"]
        assert "RuntimeError: boom" in failed[0]["fields"]["error"]

    def test_ring_is_bounded(self):
        for index in range(SPAN_RING_SIZE + 50):
            record_span("flood", 0.0, trace_id="t", index=index)
        spans = recent_spans()
        assert len(spans) == SPAN_RING_SIZE
        # Oldest entries were evicted, newest survive.
        assert spans[-1]["fields"]["index"] == SPAN_RING_SIZE + 49

    def test_recent_spans_filters_by_trace(self):
        record_span("a", 0.1, trace_id="trace-one")
        record_span("b", 0.1, trace_id="trace-two")
        only = recent_spans(trace_id="trace-one")
        assert [s["name"] for s in only] == ["a"]

    def test_listener_sees_completed_spans(self):
        seen = []
        add_span_listener(seen.append)
        try:
            with span("listened"):
                pass
        finally:
            remove_span_listener(seen.append)
        assert [s["name"] for s in seen] == ["listened"]


class TestTraceSinkFailure:
    def test_broken_sink_counts_logs_and_disables(self):
        errors = registry().counter(
            "nanoxbar_trace_sink_errors_total",
            "trace JSONL sinks disabled after a write error")
        before = errors.value
        set_trace_sink("/nonexistent-dir/sink.jsonl")
        try:
            record_span("sink-fail-probe", 0.01)
            assert errors.value == before + 1
            # The sink is dropped after the first failure: later spans
            # neither raise nor re-count.
            record_span("sink-fail-probe", 0.01)
            assert errors.value == before + 1
        finally:
            set_trace_sink(None)


class TestProfile:
    def setup_method(self):
        clear_spans()

    def test_profiled_collects_and_renders_tree(self):
        with profiled("cli.test") as report:
            with span("engine.run_batch"):
                record_span("pool.shard", 0.01)
                record_span("pool.shard", 0.02)
        tree = report.render()
        lines = tree.split("\n")
        assert lines[0].startswith("cli.test")
        assert any(line.strip().startswith("engine.run_batch")
                   for line in lines)
        shard = next(line for line in lines
                     if line.strip().startswith("pool.shard"))
        assert "2x" in shard and "avg" in shard

    def test_render_span_tree_handles_empty(self):
        assert render_span_tree([]) == "(no spans recorded)"


class TestEngineStatsAtomicity:
    def test_record_run_is_atomic_under_threads(self):
        stats = EngineStats()
        threads, runs = 8, 100
        barrier = threading.Barrier(threads)

        def work(index):
            barrier.wait()
            for _ in range(runs):
                stats.record_run(jobs=4, cache_hits=1, races_run=2,
                                 deduped=1, elapsed=0.001,
                                 strategy_wins={"dual": 3,
                                                f"s{index % 3}": 1})

        workers = [threading.Thread(target=work, args=(i,))
                   for i in range(threads)]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        total = threads * runs
        assert stats.jobs == 4 * total
        assert stats.cache_hits == total
        assert stats.cache_misses == 3 * total
        assert stats.races_run == 2 * total
        assert stats.deduped == total
        assert stats.strategy_wins["dual"] == 3 * total
        assert sum(stats.strategy_wins.values()) == 4 * total

    def test_strategy_wins_snapshot_order_is_sorted(self):
        stats = EngineStats()
        stats.record_run(1, 0, 1, 0, 0.1, {"zeta": 1})
        stats.record_run(1, 0, 1, 0, 0.1, {"alpha": 1})
        snapshot = stats.as_dict()
        assert list(snapshot["strategy_wins"]) == ["alpha", "zeta"]
        assert list(stats.strategy_wins) == ["alpha", "zeta"]

    def test_as_dict_ratios_consistent(self):
        stats = EngineStats()
        stats.record_run(10, 4, 6, 0, 2.0, {"dual": 10})
        snapshot = stats.as_dict()
        assert snapshot["hit_rate"] == pytest.approx(0.4)
        assert snapshot["throughput"] == pytest.approx(5.0)


class TestJsonLogging:
    def test_json_lines_carry_trace_and_fields(self):
        stream = io.StringIO()
        logger = get_logger("test")
        try:
            configure_logging(json_mode=True, stream=stream)
            with span("logging.block") as handle:
                log_event(logger, "point done", points=3, family="faultsim")
            trace_id = handle.trace_id
        finally:
            configure_logging(json_mode=False, stream=io.StringIO())
        record = json.loads(stream.getvalue().strip())
        assert record["msg"] == "point done"
        assert record["level"] == "info"
        assert record["logger"] == "nanoxbar.test"
        assert record["trace_id"] == trace_id
        assert record["points"] == 3
        assert record["family"] == "faultsim"

    def test_text_mode_still_logs(self):
        stream = io.StringIO()
        logger = get_logger("texty")
        try:
            configure_logging(json_mode=False, stream=stream)
            logger.info("hello %s", "world")
        finally:
            configure_logging(json_mode=False, stream=io.StringIO())
        assert "hello world" in stream.getvalue()
