"""Tests for the dictionary-based diagnosis over the full fault universe."""

import pytest

from repro.reliability import (
    CrossbarFabric,
    CrosspointStuckClosed,
    CrosspointStuckOpen,
    LineStuckAt,
    build_fault_dictionary,
    diagnosis_configurations,
    signature,
)

class TestFaultDictionary:
    @pytest.fixture(scope="class")
    def dictionary(self):
        return build_fault_dictionary(3, 3)

    def test_every_fault_has_a_signature(self, dictionary):
        # universe: 2*9 crosspoints + 2*3+2*3 lines + 2+2 bridges = 34
        assert dictionary.num_faults == 34

    def test_no_fault_is_silent(self, dictionary):
        all_pass = tuple([False] * dictionary.num_configurations)
        assert dictionary.lookup(all_pass) == ()

    def test_crosspoint_faults_fully_distinguished(self, dictionary):
        # the block-code configurations guarantee crosspoint uniqueness;
        # a crosspoint fault never shares a group with another crosspoint
        for group in dictionary.groups.values():
            crosspoints = [f for f in group
                           if isinstance(f, (CrosspointStuckOpen,
                                             CrosspointStuckClosed))]
            assert len(crosspoints) <= 1

    def test_lookup_roundtrip(self, dictionary):
        fabric = CrossbarFabric(3, 3)
        fault = LineStuckAt("col", 1, True)
        configs = diagnosis_configurations(3, 3)
        from repro.reliability.bist import bist_configurations

        configs += [c for c in bist_configurations(3, 3)
                    if c.name not in {"all-on", "all-off"}]
        observed = signature(fabric, configs, fault)
        assert fault in dictionary.lookup(observed)

    def test_ambiguity_metrics_consistent(self, dictionary):
        assert dictionary.num_signatures <= dictionary.num_faults
        assert dictionary.max_ambiguity >= 1
        assert dictionary.avg_ambiguity >= 1.0
        assert dictionary.avg_ambiguity <= dictionary.max_ambiguity

    def test_diagnosability_is_high(self, dictionary):
        # most faults should be uniquely identified by the combined suite
        unique = sum(1 for g in dictionary.groups.values() if len(g) == 1)
        assert unique / dictionary.num_faults > 0.6

    def test_dictionary_without_bridges(self):
        dictionary = build_fault_dictionary(3, 3, include_bridges=False)
        assert dictionary.num_faults == 30
        assert not any(
            type(f).__name__ == "BridgeFault"
            for g in dictionary.groups.values() for f in g
        )

    def test_extra_configurations_can_only_refine(self):
        base = build_fault_dictionary(3, 3)
        from repro.reliability.bist import bist_configurations

        extra = [c for c in bist_configurations(3, 3) if c.name == "all-on"]
        refined = build_fault_dictionary(3, 3, extra_configurations=extra)
        assert refined.num_signatures >= base.num_signatures
