"""Docs stay truthful: every command and env var they name must exist.

The ``docs/`` tree (and the README) is checked against the code itself —
a ``nanoxbar <subcommand>`` reference must be a real subparser (including
the nested ``nanoxbar grid <command>`` choices), and every ``NANOXBAR_*``
environment variable mentioned must be one the source tree actually
reads.  Renaming a command or a switch without updating the docs fails
the build.
"""

import argparse
import pathlib
import re

import pytest

from repro.eval.cli import build_parser

REPO = pathlib.Path(__file__).resolve().parent.parent
DOC_FILES = sorted(REPO.glob("docs/*.md")) + [REPO / "README.md"]

#: ``nanoxbar <token>`` — the token must be a real subcommand.  A
#: backtick directly after ``nanoxbar`` (as in "the ``nanoxbar`` entry
#: point") ends the match before any token, so prose mentions don't trip.
_SUBCOMMAND_RE = re.compile(r"nanoxbar\s+([a-z][a-z0-9-]*)")
_GRID_SUBCOMMAND_RE = re.compile(r"nanoxbar\s+grid\s+([a-z][a-z0-9-]*)")
_ENV_RE = re.compile(r"NANOXBAR_[A-Z_]+[A-Z]")


def _subparser_choices(parser: argparse.ArgumentParser) -> dict:
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return dict(action.choices)
    return {}


@pytest.fixture(scope="module")
def cli_choices():
    top = _subparser_choices(build_parser())
    assert top, "the CLI lost its subparsers?"
    nested = {name: set(_subparser_choices(sub))
              for name, sub in top.items()}
    return set(top), nested


def _read(path: pathlib.Path) -> str:
    return path.read_text(encoding="utf-8")


def test_docs_tree_exists_and_is_linked():
    assert (REPO / "docs" / "architecture.md").is_file()
    assert (REPO / "docs" / "grid.md").is_file()
    assert (REPO / "docs" / "operations.md").is_file()
    readme = _read(REPO / "README.md")
    for page in ("docs/architecture.md", "docs/grid.md",
                 "docs/operations.md"):
        assert page in readme, f"README does not link {page}"


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_docs_reference_only_real_subcommands(path, cli_choices):
    commands, nested = cli_choices
    text = _read(path)
    unknown = {token for token in _SUBCOMMAND_RE.findall(text)
               if token not in commands}
    assert not unknown, (
        f"{path.name} references nanoxbar subcommands the CLI does not "
        f"define: {sorted(unknown)} (known: {sorted(commands)})")
    grid_unknown = {token for token in _GRID_SUBCOMMAND_RE.findall(text)
                    if token not in nested.get("grid", set())}
    assert not grid_unknown, (
        f"{path.name} references 'nanoxbar grid' subcommands that do not "
        f"exist: {sorted(grid_unknown)}")


@pytest.fixture(scope="module")
def env_vars_in_src():
    tokens: set[str] = set()
    for path in (REPO / "src").rglob("*.py"):
        tokens.update(_ENV_RE.findall(path.read_text(encoding="utf-8")))
    assert tokens, "no NANOXBAR_* switches found in src?"
    return tokens


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_docs_reference_only_real_env_vars(path, env_vars_in_src):
    unknown = set(_ENV_RE.findall(_read(path))) - env_vars_in_src
    assert not unknown, (
        f"{path.name} mentions environment variables the code never "
        f"reads: {sorted(unknown)} (known: {sorted(env_vars_in_src)})")


def test_operations_page_covers_every_stock_watchdog_rule():
    from repro.obs.health import default_server_rules

    text = _read(REPO / "docs" / "operations.md")
    for rule in default_server_rules():
        assert rule.name in text, (
            f"docs/operations.md does not document watchdog rule "
            f"{rule.name!r}")


def test_grid_page_covers_every_family_and_config_key():
    from repro.grid import FAMILIES
    from repro.grid.config import _KNOWN_KEYS

    text = _read(REPO / "docs" / "grid.md")
    for family in FAMILIES:
        assert f"`{family}`" in text, (
            f"docs/grid.md does not document family {family!r}")
    for key in sorted(_KNOWN_KEYS):
        assert f"`{key}`" in text, (
            f"docs/grid.md does not document config key {key!r}")
