"""Tests for GF(2) linear algebra and D-reducible decomposition."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.boolean import (
    TruthTable,
    affine_hull,
    d_reduction,
    embed_projection,
    gf2_kernel,
    gf2_rank,
    gf2_row_reduce,
    is_d_reducible,
    onset_affine_hull,
    parity_table,
    project_onto,
)


class TestGf2:
    def test_row_reduce_rank(self):
        rows = [0b011, 0b101, 0b110]  # third = sum of first two
        reduced, pivots = gf2_row_reduce(rows, 3)
        assert len(reduced) == 2 == gf2_rank(rows, 3)
        assert pivots == sorted(pivots)

    def test_row_reduce_rref_property(self):
        rows = [0b1101, 0b0111, 0b1010]
        reduced, pivots = gf2_row_reduce(rows, 4)
        for i, (row, pivot) in enumerate(zip(reduced, pivots)):
            assert (row >> pivot) & 1
            for j, other in enumerate(reduced):
                if i != j:
                    assert not (other >> pivot) & 1

    def test_kernel_orthogonality(self):
        rows = [0b011, 0b110]
        kernel = gf2_kernel(rows, 3)
        assert len(kernel) == 1
        for c in kernel:
            for r in rows:
                assert bin(c & r).count("1") % 2 == 0

    @given(st.lists(st.integers(min_value=0, max_value=31), max_size=6))
    def test_rank_nullity(self, rows):
        rank = gf2_rank(rows, 5)
        kernel = gf2_kernel(rows, 5)
        assert rank + len(kernel) == 5

    def test_parity_table(self):
        t = parity_table(3, 0b101, rhs=True)
        for m in range(8):
            assert t.evaluate(m) == (bin(m & 0b101).count("1") % 2 == 1)


class TestAffineHull:
    def test_single_point_is_zero_dim(self):
        space = affine_hull([0b101], 3)
        assert space.dim == 0
        assert space.points() == [0b101]

    def test_two_points_one_dim(self):
        space = affine_hull([0b000, 0b011], 3)
        assert space.dim == 1
        assert space.points() == [0b000, 0b011]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            affine_hull([], 3)

    @given(st.sets(st.integers(min_value=0, max_value=15), min_size=1, max_size=8))
    def test_hull_contains_points_and_is_affine(self, points):
        space = affine_hull(points, 4)
        for p in points:
            assert space.contains(p)
        pts = space.points()
        assert len(pts) == space.num_points
        # affine closure: a ^ b ^ c stays inside
        sample = pts[: min(len(pts), 4)]
        for a in sample:
            for b in sample:
                for c in sample:
                    assert (a ^ b ^ c) in set(pts)

    @given(st.sets(st.integers(min_value=0, max_value=15), min_size=1, max_size=8))
    def test_characteristic_table_matches_points(self, points):
        space = affine_hull(points, 4)
        chi = space.characteristic_table()
        assert sorted(chi.minterms()) == space.points()

    @given(st.sets(st.integers(min_value=0, max_value=15), min_size=1, max_size=6))
    def test_complete_point_consistency(self, points):
        space = affine_hull(points, 4)
        for t in range(1 << space.dim):
            p = space.complete_point(t)
            assert space.contains(p)
        # distinct parameter values give distinct points
        completed = {space.complete_point(t) for t in range(1 << space.dim)}
        assert len(completed) == space.num_points


class TestDReduction:
    def test_affine_function_is_reducible(self):
        # on-set = even-parity points: lives in affine space x0^x1^x2 = 0
        t = TruthTable.from_callable(3, lambda m: bin(m).count("1") % 2 == 0)
        space = onset_affine_hull(t)
        assert space.dim == 2
        assert is_d_reducible(t)

    def test_full_space_not_reducible(self):
        t = TruthTable.constant(3, True)
        assert not is_d_reducible(t)
        assert d_reduction(t) is None

    def test_constant_zero_not_reducible(self):
        assert not is_d_reducible(TruthTable.constant(3, False))

    def test_known_decomposition(self):
        # f = x1' x2 x3 + x1 x2' x3: on-set {0b110, 0b101} -- both have
        # x3=1 and x1^x2=1, a 1-dimensional affine space.
        t = TruthTable.from_minterms(3, [0b110, 0b101])
        result = d_reduction(t)
        assert result is not None
        space, projected = result
        assert space.dim == 1
        chi = space.characteristic_table()
        embedded = embed_projection(projected, space)
        assert (chi & embedded) == t

    @given(st.sets(st.integers(min_value=0, max_value=15), min_size=1, max_size=6))
    @settings(max_examples=60)
    def test_reduction_recomposes(self, minterms):
        t = TruthTable.from_minterms(4, minterms)
        result = d_reduction(t)
        if result is None:
            return
        space, projected = result
        chi = space.characteristic_table()
        embedded = embed_projection(projected, space)
        assert (chi & embedded) == t

    @given(st.sets(st.integers(min_value=0, max_value=15), min_size=1, max_size=6))
    @settings(max_examples=60)
    def test_projection_pointwise(self, minterms):
        t = TruthTable.from_minterms(4, minterms)
        space = onset_affine_hull(t)
        projected = project_onto(t, space)
        for param in range(1 << space.dim):
            assert projected.evaluate(param) == t.evaluate(space.complete_point(param))
