#!/usr/bin/env python3
"""A tiny "nanocomputer": the paper's Section V roadmap endpoint.

Builds the future-work sub-objectives 3-4 out of crossbar blocks:

* a 2-bit crossbar adder (verified exhaustively),
* a crossbar memory with a diode-crossbar address decoder,
* a synchronous state machine (sequence detector) whose next-state and
  output logic are switching lattices.

Run:  python examples/nanocomputer_ssm.py
"""

from repro.arch import (
    CrossbarMemory,
    SynchronousStateMachine,
    adder_reference,
    counter_spec,
    sequence_detector_spec,
    synthesize_adder,
)


def main() -> None:
    # Arithmetic element ----------------------------------------------------
    adder = synthesize_adder(2)
    assert adder.verify_against(adder_reference(2))
    print(f"2-bit adder: {adder.num_outputs} output blocks, "
          f"total lattice area {adder.total_area}")
    for block in adder.blocks:
        print(f"  {block.name:6s}: {block.shape[0]} x {block.shape[1]} lattice")
    print(f"  3 + 2 = {adder.evaluate(3 | (2 << 2)) & 0b111}")
    print()

    # Memory element ---------------------------------------------------------
    memory = CrossbarMemory(address_bits=3, width=4)
    program = {0: 0b0001, 1: 0b0011, 2: 0b0111, 3: 0b1111, 4: 0b1010}
    memory.load(program)
    print(f"crossbar memory: {memory.num_words} words x {memory.width} bits, "
          f"decoder {memory.decoder.shape}, total area {memory.total_area}")
    for address, value in program.items():
        assert memory.read(address) == value
    print(f"  word[2] = {memory.read(2):04b}")
    print()

    # Synchronous state machine ----------------------------------------------
    detector = SynchronousStateMachine(sequence_detector_spec([1, 0, 1]))
    assert detector.verify_against_spec()
    stream = [1, 0, 1, 0, 1, 1, 0, 1]
    outputs = detector.run(stream)
    print(f"SSM '101' detector: lattice area {detector.total_area}, "
          f"state bits {detector.spec.state_bits}")
    print(f"  input : {stream}")
    print(f"  output: {outputs}  (1 fires the cycle after each match)")
    print()

    counter = SynchronousStateMachine(counter_spec(3))
    counter.run([1] * 5)
    print(f"SSM 3-bit counter after 5 enabled cycles: state = {counter.state}")
    assert counter.state == 5
    print()
    print("arithmetic + memory + SSM: every combinational bit is a verified "
          "crossbar array — the paper's 'emerging nanocomputer' endpoint")


if __name__ == "__main__":
    main()
