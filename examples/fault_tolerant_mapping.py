#!/usr/bin/env python3
"""Fault-tolerant self-mapping on a defective crossbar (Section IV).

End-to-end flow:

1. synthesize a function onto a diode array (the application program);
2. fabricate a defective 16 x 16 crossbar (random stuck-open/closed map);
3. run BIST and show its exhaustive coverage;
4. map the application with blind / greedy / hybrid BISM and compare costs;
5. extract a universal defect-free k x k subarray (the Fig. 6b flow) and
   place the application there with zero additional test sessions.

Run:  python examples/fault_tolerant_mapping.py
"""

import random

from repro.boolean import BooleanFunction
from repro.reliability import (
    STRATEGIES,
    as_program,
    greedy_clean_subarray,
    is_clean,
    mapping_is_valid,
    random_defect_map,
    run_bisd,
    run_bist,
)
from repro.synthesis import synthesize_diode


def main() -> None:
    rng = random.Random(691178)  # the NANOxCOMP project number

    # 1. the application: a full-adder carry on a diode plane
    f = BooleanFunction.from_expression(
        "x1 x2 + x1 x3 + x2 x3", label="fa_carry")
    diode = synthesize_diode(f.on)
    program = as_program([
        [diode.connections[r][c] for c in range(len(diode.literals))]
        for r in range(diode.num_rows)
    ])
    print(f"application: {f.label}, program {len(program)} x {len(program[0])}")

    # 2. a defective chip
    defect_map = random_defect_map(16, 16, density=0.12, rng=rng)
    print(f"crossbar   : 16 x 16 with {defect_map.num_defects} defects "
          f"(density {defect_map.density:.2f})")
    print(defect_map.render())
    print()

    # 3. BIST / BISD characterisation of this fabric size
    bist = run_bist(16, 16)
    print(f"BIST       : {bist.num_configurations} configurations, "
          f"{bist.num_vectors} vectors, coverage {bist.coverage:.0%} "
          f"of {bist.num_faults} faults "
          f"(naive: {bist.naive_configurations} configurations)")
    bisd = run_bisd(8, 8)
    print(f"BISD (8x8) : {bisd.num_configurations} configurations for "
          f"{bisd.num_resources} resources "
          f"(= ceil(log2) + 2), accuracy {bisd.accuracy:.0%}")
    print()

    # 4. self-mapping strategies
    print("BISM strategies (one run each):")
    for name, strategy in STRATEGIES.items():
        result = strategy(program, defect_map, random.Random(7))
        status = "ok" if result.success else "FAILED"
        print(f"  {name:7s}: {status}, {result.bist_sessions} BIST + "
              f"{result.bisd_sessions} BISD sessions")
        if result.success:
            assert mapping_is_valid(program, result.mapping, defect_map)
    print()

    # 5. the defect-unaware flow
    clean = greedy_clean_subarray(defect_map)
    assert is_clean(defect_map, clean.rows, clean.cols)
    print(f"defect-unaware flow: recovered a clean "
          f"{len(clean.rows)} x {len(clean.cols)} region (k = {clean.k})")
    print(f"  stored map: {16 * 16} crosspoint states -> "
          f"{(16 - len(clean.rows)) + (16 - len(clean.cols)) + 2} words "
          f"(excluded-line lists)")
    print("  any application fitting the clean region now maps with zero "
          "test sessions")


if __name__ == "__main__":
    main()
