#!/usr/bin/env python3
"""The two preprocessing decompositions of Section III-B.

* P-circuits ([5],[7]): split on a variable, synthesize the smaller cofactor
  blocks, recompose with the lattice OR/AND algebra of [3];
* D-reducible functions ([4],[6]): factor f = chi_A & f_A through the affine
  hull of the on-set.

Run:  python examples/decomposition_methods.py
"""

from repro.boolean import BooleanFunction, onset_affine_hull
from repro.eval import suite
from repro.synthesis import (
    best_pcircuit,
    optimize_lattice,
    synthesize_dreducible,
    synthesize_lattice_dual,
)


def pcircuit_demo() -> None:
    print("=== P-circuit decomposition ===")
    f = BooleanFunction.from_expression(
        "x1 x2 x3 + x1' x2' x3 + x2 x3' x4 + x1' x3' x4'", label="demo")
    table = f.on
    direct = optimize_lattice(synthesize_lattice_dual(table), table).lattice
    print(f"direct dual-based lattice (folded): {direct.shape} "
          f"= area {direct.area}")
    result = best_pcircuit(table)
    dec = result.decomposition
    polarity = "" if dec.polarity else "'"
    print(f"best split: x{dec.var + 1}{polarity}")
    for block, lattice in result.block_lattices.items():
        print(f"  block {block}: {lattice.rows} x {lattice.cols}")
    folded = optimize_lattice(result.lattice, table).lattice
    print(f"P-circuit lattice: area {result.area} "
          f"-> {folded.area} after folding")
    print()


def dreducible_demo() -> None:
    print("=== D-reducible decomposition ===")
    for benchmark in suite(tags=["d-reducible"], max_vars=5):
        table = benchmark.function.on
        hull = onset_affine_hull(table)
        print(f"{benchmark.name}: n = {benchmark.n}, "
              f"affine hull dim = {hull.dim} "
              f"({benchmark.n - hull.dim} dimensions dropped)")
        result = synthesize_dreducible(table)
        direct = optimize_lattice(synthesize_lattice_dual(table), table).lattice
        print(f"  chi_A lattice {result.chi_lattice.shape}, "
              f"f_A lattice {result.projection_lattice.shape}, "
              f"composed area {result.lattice.area} "
              f"(direct: {direct.area})")
    print()


def main() -> None:
    pcircuit_demo()
    dreducible_demo()


if __name__ == "__main__":
    main()
