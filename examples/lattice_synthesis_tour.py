#!/usr/bin/env python3
"""Four-terminal lattice synthesis tour (Section III-B).

Reproduces the Fig. 4 worked example, then shows the whole optimisation
ladder on it:

1. the hand-crafted 3 x 2 lattice of Fig. 4,
2. the Fig. 5 dual-based formula lattice ([2],[3]),
3. row/column folding ([11]),
4. P-circuit decomposition ([5],[7]),
5. SAT-based exact synthesis ([9]) on a smaller function where it is cheap.

Run:  python examples/lattice_synthesis_tour.py
"""

from repro.boolean import BooleanFunction
from repro.crossbar import Lattice
from repro.synthesis import (
    best_pcircuit,
    optimize_lattice,
    synthesize_lattice_dual,
    synthesize_lattice_optimal,
)


def main() -> None:
    f = BooleanFunction.from_expression(
        "x1 x2 x3 + x1 x2 x5 x6 + x2 x3 x4 x5 + x4 x5 x6", label="fig4",
    )
    print(f"target: {f.label} = {f.to_expression()}")
    print()

    hand = Lattice.from_strings(6, ["x1 x4", "x2 x5", "x3 x6"])
    print(f"1. paper Fig. 4 lattice ({hand.rows} x {hand.cols}, "
          f"area {hand.area}):")
    print(hand.render(f.names))
    print(f"   implements f: {hand.implements(f.on)}")
    print("   (the figure draws it sideways: TOP on the right)")
    print()

    formula = synthesize_lattice_dual(f.on)
    print(f"2. Fig. 5 formula lattice: {formula.rows} x {formula.cols} "
          f"= area {formula.area}")
    print("   rows = products(fD), cols = products(f); correct but large")
    print()

    folded = optimize_lattice(formula, f.on)
    print(f"3. after folding [11]: {folded.folded_shape} "
          f"= area {folded.folded_area} "
          f"(saved {folded.area_saving} sites)")
    print(folded.lattice.render(f.names))
    print()

    pc = best_pcircuit(f.on)
    pc_folded = optimize_lattice(pc.lattice, f.on)
    print(f"4. best P-circuit split on x{pc.decomposition.var + 1}: "
          f"area {pc.area} -> {pc_folded.folded_area} after folding")
    print(f"   block areas: {pc.block_areas}")
    print()

    g = BooleanFunction.from_expression("x1 x2 + x1' x2'", label="xnor2")
    optimal = synthesize_lattice_optimal(g.on)
    print(f"5. SAT-exact synthesis on {g.label}: "
          f"{optimal.shape} = area {optimal.area} "
          f"(proved optimal: {optimal.proved_optimal}, "
          f"{len(optimal.shapes_tried)} shapes tried)")
    print(optimal.lattice.render(g.names))


if __name__ == "__main__":
    main()
