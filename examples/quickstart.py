#!/usr/bin/env python3
"""Quickstart: synthesize one function onto all three nano-crossbar styles.

This walks the paper's Section III on its own worked example,
f = x1 x2 + x1' x2' (XNOR):

* a diode array sized by the Fig. 3 formula (2 x 5),
* a complementary FET array (4 x 4),
* a four-terminal switching lattice (2 x 2, Fig. 5 formula).

Run:  python examples/quickstart.py
"""

from repro.boolean import BooleanFunction
from repro.synthesis import (
    synthesize_diode,
    synthesize_fet,
    synthesize_lattice_dual,
)


def main() -> None:
    f = BooleanFunction.from_expression("x1 x2 + x1' x2'", label="xnor2")
    print(f"function     : {f.label} = {f.to_expression()}")
    metrics = f.sop_metrics()
    print(f"SOP metrics  : {metrics['products']} products, "
          f"{metrics['distinct_literals']} literals, "
          f"{metrics['dual_products']} dual products")
    print()

    diode = synthesize_diode(f.on)
    print(f"diode array  : {diode.num_rows} x {diode.num_cols} "
          f"(Fig. 3: products x (literals + 1))")
    print(diode.render(f.names))
    print()

    fet = synthesize_fet(f.on)
    print(f"FET array    : {fet.num_rows} x {fet.num_cols} "
          f"(Fig. 3: literals x (products(f) + products(fD)))")
    print(fet.render(f.names))
    print()

    lattice = synthesize_lattice_dual(f.on)
    print(f"4T lattice   : {lattice.rows} x {lattice.cols} "
          f"(Fig. 5: products(fD) x products(f))")
    print(lattice.render(f.names))
    print()

    for name, array in (("diode", diode), ("fet", fet), ("lattice", lattice)):
        assert array.implements(f.on), name
    print("all three arrays verified against the truth table "
          f"(2^{f.n} assignments)")


if __name__ == "__main__":
    main()
